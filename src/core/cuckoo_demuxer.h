// Bucketized cuckoo demuxer with per-bucket presence filters (Cuckoo++).
//
// The flat robin-hood table makes hits cheap but a miss still walks its
// probe run. This structure makes *misses* O(1): every key has exactly two
// candidate buckets (4 slots each), so a lookup examines at most 8 tags —
// and, following Cuckoo++ [LeS17], each bucket carries a 16-bit presence
// filter of the fingerprints that overflowed to their alternate bucket, so
// the overwhelming majority of negative lookups stop after ONE bucket:
//
//   * bucket = 4 one-byte fingerprint tags + 16-bit filter, 6 bytes of
//     metadata loaded together — a negative probe touches ~1 cache line;
//   * the alternate bucket is derived from the primary and the tag alone
//     (b2 = b1 ^ (mix(tag)|1), an involution: either bucket recovers the
//     other), so displacing a resident never needs its key re-hashed;
//   * insertion breadth-first-searches the kick graph for the shortest
//     displacement path (bounded node budget), moving at most a handful of
//     entries; Pcbs are individually owned so Pcb* survive kicks, growth,
//     and seed rotation;
//   * the filter is *counted* (per-bucket count per filter index, cold
//     array off the lookup path), so deletions and kick-backs clear bits
//     exactly when the last overflowed resident leaves — no false
//     negatives, ever (the StructuralValidator proves it after every
//     mutation in the fuzz suites);
//   * growth doubles the bucket array at 7/8 occupancy; an insert whose
//     kick search exhausts its budget triggers the keyed-seed rotation
//     (`rehash` option) and then growth, and is shed only if the table
//     stays unplaceable while half empty — the signature of crafted
//     full-hash collisions, which no table geometry can absorb.
//
// Accounting: `examined` counts key comparisons (fingerprint hits), as in
// the flat table. Tag and filter probes are free by design. The watermark
// is the worst BFS search effort (nodes expanded) an insert has needed;
// the limit is the search budget, so a bucket-targeted flood that
// exhausts the budget crosses the watermark by definition.
#ifndef TCPDEMUX_CORE_CUCKOO_DEMUXER_H_
#define TCPDEMUX_CORE_CUCKOO_DEMUXER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/demuxer.h"
#include "net/hashers.h"

namespace tcpdemux::core {

class CuckooDemuxer final : public Demuxer {
 public:
  struct Options {
    std::size_t initial_capacity = 1024;  ///< slots; rounded up to 2^k >= 16
    /// Cuckoo derives the alternate bucket from the fingerprint tag, so a
    /// collapsible fold (xor_fold) turns every colliding key into a shared
    /// (b1, b2) pair and the table sheds past 8 co-residents. Default to
    /// the hardware-CRC32C family; the registry applies the same default.
    net::HashSpec hasher = net::HasherKind::kCrc32c;  ///< seed 0 = unkeyed
    /// Rotate the hash seed and rebuild in place when an insert's kick
    /// search exhausts its budget (collision-flood defense).
    bool rehash_on_overload = false;
    /// Refuse inserts beyond this many PCBs (0 = unbounded). Refused
    /// inserts return nullptr and count in resilience().inserts_shed.
    std::size_t max_pcbs = 0;
    /// Grow by incremental migration instead of stop-the-world rebuild:
    /// the outgoing bucket array drains behind a slot cursor, a bounded
    /// batch per operation, so no insert ever pays an O(size) pause (see
    /// DESIGN.md "Incremental resize & degradation ladder").
    bool incremental = false;
  };

  CuckooDemuxer() : CuckooDemuxer(Options()) {}
  explicit CuckooDemuxer(Options options);

  Pcb* insert(const net::FlowKey& key) override;
  bool erase(const net::FlowKey& key) override;
  using Demuxer::lookup;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override;
  void lookup_batch(std::span<const net::FlowKey> keys,
                    std::span<LookupResult> results,
                    SegmentKind kind) override;
  LookupResult lookup_wildcard(const net::FlowKey& key) override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;

  /// Current slot count (buckets * 4; doubles as the table grows).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return (bucket_mask_ + 1) * kBucketWidth;
  }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return bucket_mask_ + 1;
  }

  /// Cumulative buckets examined across all lookups (test/bench hook: the
  /// Cuckoo++ claim is ~1 per negative lookup; at most 2 ever).
  [[nodiscard]] std::uint64_t buckets_probed() const noexcept {
    return buckets_probed_;
  }

  /// The natural partition is the bucket: 4-slot resident counts
  /// (including empty buckets), summing to size().
  [[nodiscard]] std::vector<std::size_t> occupancy() const override;

  [[nodiscard]] ResilienceStats resilience() const override;
  /// Current hash spec (seed changes after an overload rehash; test hook).
  [[nodiscard]] net::HashSpec hash_spec() const noexcept {
    return options_.hasher;
  }
  /// Kick-search budget in BFS nodes: the overload watermark limit. A
  /// benign insert at 7/8 load finds a path after a handful of nodes; only
  /// bucket-targeted floods (or crafted full-hash collisions) exhaust it.
  [[nodiscard]] std::uint64_t watermark_limit() const noexcept {
    return kMaxBfsNodes;
  }

  bool migration_step() override;
  /// True while an outgoing bucket array is still draining.
  [[nodiscard]] bool migrating() const noexcept { return old_ != nullptr; }
  /// PCBs still resident in the outgoing array (0 when not migrating).
  [[nodiscard]] std::size_t migration_debt() const noexcept {
    return old_ == nullptr ? 0 : old_->residents;
  }
  /// True while growth is allocation-blocked (ladder rung 1 engaged).
  [[nodiscard]] bool growth_blocked() const noexcept { return grow_blocked_; }

  static constexpr std::size_t kBucketWidth = 4;

 private:
  friend class StructuralValidator;   // src/core/validate.h
  friend struct ValidatorTestAccess;  // negative validator tests only

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinBuckets = 4;  ///< 16 slots
  static constexpr std::size_t kMaxBfsNodes = 64;

  /// One bucket's lookup metadata, loaded as a unit: 4 fingerprint tags
  /// (0 = empty slot) and the Cuckoo++ presence filter — bit (tag & 15) is
  /// set while any key with that fingerprint nibble whose *primary* bucket
  /// is this one resides in its alternate bucket.
  struct BucketMeta {
    std::array<std::uint8_t, kBucketWidth> tags{};
    std::uint16_t filter = 0;
  };

  /// Tag byte: occupied bit (0x80) | top 7 hash bits. 0 means empty.
  [[nodiscard]] static constexpr std::uint8_t tag_of(std::uint32_t h) noexcept {
    return static_cast<std::uint8_t>(0x80U | (h >> 25));
  }
  [[nodiscard]] static constexpr std::uint32_t filter_index(
      std::uint8_t tag) noexcept {
    return tag & 15U;
  }

  /// Avalanche-finalized hash (same repair as the flat table: the bucket
  /// index masks low bits, the fingerprint takes top bits).
  [[nodiscard]] std::uint32_t hash_of(const net::FlowKey& key) const noexcept {
    return net::mix32_avalanche(net::hash_flow(options_.hasher, key));
  }
  [[nodiscard]] std::size_t bucket_of(std::uint32_t h) const noexcept {
    return h & bucket_mask_;
  }
  /// Partial-key alternate bucket [LeS17]: derived from the bucket and the
  /// tag only, via an xor involution. The offset is forced odd so it never
  /// masks to zero (bucket counts are powers of two >= 4), guaranteeing
  /// b1 != b2.
  [[nodiscard]] std::size_t alt_bucket(std::size_t bucket,
                                       std::uint8_t tag) const noexcept {
    return (bucket ^ (net::mix32_avalanche(tag) | 1U)) & bucket_mask_;
  }

  struct Probe {
    std::size_t slot = kNpos;    ///< kNpos when absent
    std::uint32_t examined = 0;  ///< key comparisons performed
    std::uint32_t buckets = 1;   ///< buckets touched (1 or 2)
  };
  [[nodiscard]] Probe find_slot(std::uint32_t h,
                                const net::FlowKey& key) const noexcept;

  /// The outgoing table during an incremental migration: a full shadow of
  /// the hot/cold arrays under their pre-doubling bucket mask. Nothing is
  /// ever placed or kicked into it, so slots [0, cursor) stay empty once
  /// drained and `residents > 0` guarantees an occupied slot at or past
  /// the cursor. Its counted filters are maintained through erase/drain,
  /// so old-side negative probes keep the one-bucket guarantee.
  struct OldTable {
    std::size_t bucket_mask = 0;
    std::size_t cursor = 0;  ///< slot index; advances only past empties
    std::size_t residents = 0;
    std::vector<BucketMeta> meta;
    std::vector<std::uint32_t> hashes;
    std::vector<net::FlowKey> keys;
    std::vector<std::unique_ptr<Pcb>> pcbs;
    std::vector<std::array<std::uint16_t, 16>> filter_counts;
    [[nodiscard]] std::size_t capacity() const noexcept {
      return (bucket_mask + 1) * kBucketWidth;
    }
  };

  [[nodiscard]] Probe find_slot_old(std::uint32_t h,
                                    const net::FlowKey& key) const noexcept;
  void old_filter_remove(std::size_t bucket, std::uint8_t tag) noexcept;
  void clear_slot_old(std::size_t slot) noexcept;

  void maybe_grow();
  bool start_migration();
  void defer_migration();
  void migrate_batch(std::size_t budget);
  void finish_migration();

  void filter_add(std::size_t bucket, std::uint8_t tag) noexcept;
  void filter_remove(std::size_t bucket, std::uint8_t tag) noexcept;

  /// Installs the (pre-hashed, known-absent) entry, kicking residents
  /// along a BFS-shortest displacement path if both candidate buckets are
  /// full. On success consumes `pcb`, reports the path length + search
  /// effort, and returns true; on false the table is unchanged and `pcb`
  /// is still owned by the caller.
  bool place_entry(std::uint32_t h, const net::FlowKey& key,
                   std::unique_ptr<Pcb>& pcb, std::size_t* effort);
  /// Moves the resident of `from` into the empty slot `to` (the other
  /// member of its bucket pair), maintaining the filter registration.
  void move_slot(std::size_t from, std::size_t to) noexcept;
  void set_slot(std::size_t slot, std::uint32_t h, const net::FlowKey& key,
                std::unique_ptr<Pcb> pcb) noexcept;

  /// Re-places every resident into a table of `buckets` buckets (doubling
  /// further if placement fails — only degenerate hash sets need it).
  /// Pointer-stable.
  void rebuild(std::size_t buckets);
  void grow();
  /// Watermark bookkeeping after a successful insert.
  void note_insert(std::size_t effort);
  /// Rotates the seed and rebuilds at the same capacity (pointer-stable).
  void rehash_with_fresh_seed();

  Options options_;
  std::size_t bucket_mask_ = 0;  ///< bucket_count - 1 (power of two)
  /// Total PCBs across the live and (during migration) outgoing arrays.
  std::size_t size_ = 0;

  /// Degradation-ladder state: growth allocation-blocked, with the
  /// current backoff window and inserts remaining until the next retry.
  bool grow_blocked_ = false;
  std::uint64_t grow_backoff_ = 0;
  std::uint64_t grow_retry_in_ = 0;

  // Overload / shedding state (see DESIGN.md "Adversarial resilience").
  std::uint64_t watermark_ = 0;
  std::uint64_t overload_rehashes_ = 0;
  std::uint64_t inserts_shed_ = 0;
  std::uint64_t inserts_since_rehash_ = 0;
  std::uint64_t rehash_cooldown_ = 0;  ///< 0 until the first rehash
  std::uint64_t buckets_probed_ = 0;

  // Hot metadata (one 6-byte record per bucket), then the slot arrays
  // (slot = bucket * 4 + i). The counted-filter backing store is cold:
  // only mutations touch it.
  std::vector<BucketMeta> meta_;
  std::vector<std::uint32_t> hashes_;
  std::vector<net::FlowKey> keys_;
  std::vector<std::unique_ptr<Pcb>> pcbs_;
  std::vector<std::array<std::uint16_t, 16>> filter_counts_;
  std::unique_ptr<OldTable> old_;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_CUCKOO_DEMUXER_H_
