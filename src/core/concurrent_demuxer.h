// Thread-safe PCB lookup with per-chain lock striping.
//
// The paper's algorithm was built for Sequent's *parallel* TCP [Dov90,
// Gar90]: on a shared-memory multiprocessor, hashing does double duty —
// it shortens scans AND partitions the lock. ConcurrentSequentDemuxer
// guards each chain (list + its one-entry cache) with its own mutex, so
// packets for different chains demultiplex fully in parallel;
// GloballyLockedDemuxer wraps any single-threaded algorithm behind one
// mutex as the contention baseline (what a naive parallel port of the BSD
// list would do). wallclock_parallel measures the difference.
//
// Concurrency contract: insert/erase/lookup/size/stats may be called from
// any thread. A Pcb* returned by lookup remains valid until some thread
// erases that key; callers coordinate erasure with use, exactly as a
// kernel does with PCB reference counting (out of scope here).
#ifndef TCPDEMUX_CORE_CONCURRENT_DEMUXER_H_
#define TCPDEMUX_CORE_CONCURRENT_DEMUXER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/demuxer.h"
#include "core/pcb_list.h"
#include "core/thread_annotations.h"
#include "net/hashers.h"

namespace tcpdemux::core {

/// Lock-striped variant of the Sequent algorithm.
class ConcurrentSequentDemuxer {
 public:
  struct Options {
    std::uint32_t chains = 19;
    net::HasherKind hasher = net::HasherKind::kXorFold;
    bool per_chain_cache = true;
  };

  ConcurrentSequentDemuxer() : ConcurrentSequentDemuxer(Options()) {}
  explicit ConcurrentSequentDemuxer(Options options);

  Pcb* insert(const net::FlowKey& key);
  bool erase(const net::FlowKey& key);
  LookupResult lookup(const net::FlowKey& key,
                      SegmentKind kind = SegmentKind::kData);

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return lookups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pcbs_examined() const noexcept {
    return examined_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::uint32_t chains() const noexcept {
    return options_.chains;
  }

 private:
  struct alignas(64) Bucket {  // avoid false sharing between chains
    Mutex mutex;
    PcbList list GUARDED_BY(mutex);
    Pcb* cache GUARDED_BY(mutex) = nullptr;
  };

  [[nodiscard]] std::uint32_t chain_of(const net::FlowKey& key) const noexcept {
    return net::hash_chain(options_.hasher, key, options_.chains);
  }

  Options options_;
  std::vector<std::unique_ptr<Bucket>> buckets_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> examined_{0};
  std::atomic<std::uint64_t> conn_seq_{0};
};

/// Any single-threaded demuxer behind one big lock — the baseline a naive
/// SMP port would use.
class GloballyLockedDemuxer {
 public:
  explicit GloballyLockedDemuxer(std::unique_ptr<Demuxer> inner)
      : inner_(std::move(inner)) {}

  Pcb* insert(const net::FlowKey& key) {
    const MutexLock lock(mutex_);
    return inner_->insert(key);
  }
  bool erase(const net::FlowKey& key) {
    const MutexLock lock(mutex_);
    return inner_->erase(key);
  }
  LookupResult lookup(const net::FlowKey& key,
                      SegmentKind kind = SegmentKind::kData) {
    const MutexLock lock(mutex_);
    return inner_->lookup(key, kind);
  }
  [[nodiscard]] std::size_t size() const {
    const MutexLock lock(mutex_);
    return inner_->size();
  }
  [[nodiscard]] std::string name() const {
    const MutexLock lock(mutex_);
    return "locked(" + inner_->name() + ")";
  }

 private:
  mutable Mutex mutex_;
  std::unique_ptr<Demuxer> inner_ GUARDED_BY(mutex_);
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_CONCURRENT_DEMUXER_H_
