#include "core/sharded_demuxer.h"

#include <algorithm>
#include <string>

namespace tcpdemux::core {

ShardedDemuxer::ShardedDemuxer(const Options& options)
    : steering_(options.steering),
      indirection_(options.shards == 0 ? 1 : options.shards,
                   options.indirection_entries) {
  const std::uint32_t n = options.shards == 0 ? 1 : options.shards;
  shards_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    shards_.push_back(make_demuxer(options.inner));
  }
}

bool ShardedDemuxer::present_on(std::uint32_t s,
                                const net::FlowKey& key) const {
  // lookup_wildcard touches neither caches nor stats (contract, test-
  // enforced), so this membership probe leaves the shard ledgers honest.
  const LookupResult r = shards_[s]->lookup_wildcard(key);
  return r.pcb != nullptr && r.pcb->key == key;
}

std::uint32_t ShardedDemuxer::owning_shard(const Pcb* pcb,
                                           const net::FlowKey& key) const {
  const std::uint32_t home = home_shard(key);
  if (!misplaced_possible_) return home;
  const LookupResult r = shards_[home]->lookup_wildcard(key);
  if (r.pcb == pcb) return home;
  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    if (s == home) continue;
    if (shards_[s]->lookup_wildcard(key).pcb == pcb) return s;
  }
  return shard_count();
}

Pcb* ShardedDemuxer::insert(const net::FlowKey& key) {
  const std::uint32_t home = home_shard(key);
  if (misplaced_possible_) {
    // Steering has drifted: the key may already live on the shard an
    // earlier table steered it to. A home-shard-only duplicate check
    // would then admit a second PCB for the same flow — the cross-shard
    // no-duplicate-key invariant the validator enforces.
    for (std::uint32_t s = 0; s < shard_count(); ++s) {
      if (s != home && present_on(s, key)) return nullptr;
    }
  }
  return shards_[home]->insert(key);
}

bool ShardedDemuxer::erase(const net::FlowKey& key) {
  const std::uint32_t home = home_shard(key);
  bool erased = shards_[home]->erase(key);
  if (!erased && misplaced_possible_) {
    for (std::uint32_t s = 0; s < shard_count() && !erased; ++s) {
      if (s != home) erased = shards_[s]->erase(key);
    }
  }
  // An empty fleet has no misplaced PCBs by definition: disarm the
  // fallback path so steady-state cost returns to one shard per lookup.
  if (erased && misplaced_possible_ && size() == 0) {
    misplaced_possible_ = false;
  }
  return erased;
}

LookupResult ShardedDemuxer::lookup(const net::FlowKey& key,
                                    SegmentKind kind) {
  const std::uint32_t home = home_shard(key);
  LookupResult r = shards_[home]->lookup(key, kind);
  if (r.pcb == nullptr && misplaced_possible_) [[unlikely]] {
    // Mis-steered flow: its PCB stayed on the shard a previous steering
    // function homed it to. Sweep the other shards; each probe's examined
    // PCBs are real work and are charged to this lookup.
    for (std::uint32_t s = 0; s < shard_count(); ++s) {
      if (s == home) continue;
      const LookupResult probe = shards_[s]->lookup(key, kind);
      r.examined += probe.examined;
      if (probe.pcb != nullptr) {
        r.pcb = probe.pcb;
        r.cache_hit = probe.cache_hit;
        ++cross_shard_hits_;
        break;
      }
    }
  }
  // Parent accounting goes to stats_ only; the parent telemetry registry
  // stays empty by design (telemetry() merges the shard registries, so a
  // parent-side copy would be counted twice).
  stats_.record(r);
  return r;
}

void ShardedDemuxer::lookup_batch(std::span<const net::FlowKey> keys,
                                  std::span<LookupResult> results,
                                  SegmentKind kind) {
  if (misplaced_possible_) [[unlikely]] {
    // Fallback sweeps are per-key control flow; batching buys nothing.
    for (std::size_t i = 0; i < keys.size(); ++i) {
      results[i] = lookup(keys[i], kind);
    }
    return;
  }
  // Partition the burst by home shard (stable within each shard, so each
  // inner demuxer sees its subsequence in arrival order — per-shard stats
  // match the scalar loop exactly), batch-probe each shard once, then
  // scatter results back to arrival positions.
  const std::size_t n = keys.size();
  batch_shard_.resize(n);
  std::vector<std::size_t> shard_n(shard_count(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    batch_shard_[i] = home_shard(keys[i]);
    ++shard_n[batch_shard_[i]];
  }
  batch_keys_.resize(n);
  batch_results_.resize(n);
  batch_index_.resize(n);
  std::vector<std::size_t> offset(shard_count(), 0);
  for (std::uint32_t s = 1; s < shard_count(); ++s) {
    offset[s] = offset[s - 1] + shard_n[s - 1];
  }
  auto cursor = offset;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = cursor[batch_shard_[i]]++;
    batch_keys_[slot] = keys[i];
    batch_index_[slot] = static_cast<std::uint32_t>(i);
  }
  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    if (shard_n[s] == 0) continue;
    shards_[s]->lookup_batch(
        std::span<const net::FlowKey>(batch_keys_).subspan(offset[s],
                                                           shard_n[s]),
        std::span<LookupResult>(batch_results_).subspan(offset[s], shard_n[s]),
        kind);
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    results[batch_index_[slot]] = batch_results_[slot];
  }
  for (std::size_t i = 0; i < n; ++i) stats_.record(results[i]);
}

void ShardedDemuxer::note_sent(Pcb* pcb) {
  if (pcb == nullptr) return;
  const std::uint32_t s = owning_shard(pcb, pcb->key);
  if (s < shard_count()) shards_[s]->note_sent(pcb);
}

LookupResult ShardedDemuxer::lookup_wildcard(const net::FlowKey& key) {
  // BSD best-match across the fleet: every shard may hold listeners, so
  // all are consulted and the lowest-wildcard match wins. Neither parent
  // nor shard stats move (wildcard contract).
  LookupResult best{};
  int best_score = -1;
  for (const auto& shard : shards_) {
    const LookupResult r = shard->lookup_wildcard(key);
    best.examined += r.examined;
    if (r.pcb == nullptr) continue;
    const int score = r.pcb->key.match_score(key);
    if (score >= 0 && (best_score < 0 || score < best_score)) {
      best.pcb = r.pcb;
      best_score = score;
      if (score == 0) break;  // exact match cannot be beaten
    }
  }
  return best;
}

std::size_t ShardedDemuxer::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::size_t ShardedDemuxer::memory_bytes() const {
  std::size_t total = sizeof(*this) +
                      indirection_.entries() * sizeof(std::uint32_t);
  for (const auto& shard : shards_) total += shard->memory_bytes();
  return total;
}

void ShardedDemuxer::for_each_pcb(
    const std::function<void(const Pcb&)>& fn) const {
  for (const auto& shard : shards_) shard->for_each_pcb(fn);
}

std::string ShardedDemuxer::name() const {
  return "sharded(" + std::to_string(shard_count()) + "x" +
         shards_[0]->name() + ")";
}

ResilienceStats ShardedDemuxer::resilience() const {
  ResilienceStats total;
  for (const auto& shard : shards_) {
    const ResilienceStats r = shard->resilience();
    total.overload_rehashes += r.overload_rehashes;
    total.inserts_shed += r.inserts_shed;
    total.watermark = std::max(total.watermark, r.watermark);
    total.watermark_limit = std::max(total.watermark_limit, r.watermark_limit);
  }
  return total;
}

bool ShardedDemuxer::migration_step() {
  bool remaining = false;
  for (const auto& shard : shards_) remaining |= shard->migration_step();
  return remaining;
}

std::vector<std::size_t> ShardedDemuxer::occupancy() const {
  // One entry per shard: interval_sample's occ_skew then reads directly
  // as cross-shard imbalance (the steering-quality telemetry the paper's
  // shared-table analysis has no analogue for).
  std::vector<std::size_t> occ(shard_count());
  for (std::uint32_t s = 0; s < shard_count(); ++s) {
    occ[s] = shards_[s]->size();
  }
  return occ;
}

report::Telemetry ShardedDemuxer::telemetry() const {
  report::Telemetry merged;
  merged.enable_histograms(telemetry_histograms_);
  for (const auto& shard : shards_) {
    merged.merge_from(shard->telemetry());
  }
  return merged;
}

void ShardedDemuxer::enable_telemetry_histograms(bool on) noexcept {
  telemetry_histograms_ = on;
  for (const auto& shard : shards_) shard->enable_telemetry_histograms(on);
}

void ShardedDemuxer::reset_telemetry() noexcept {
  for (const auto& shard : shards_) shard->reset_telemetry();
}

void ShardedDemuxer::reset_stats() noexcept {
  Demuxer::reset_stats();
  // Shard ledgers feed the merged telemetry view; resetting only the
  // parent would leave telemetry() reporting lookups stats() forgot.
  for (const auto& shard : shards_) shard->reset_stats();
}

void ShardedDemuxer::set_indirection_entry(std::uint32_t index,
                                           std::uint32_t queue) {
  indirection_.set_entry(index, queue % shard_count());
  if (size() != 0) misplaced_possible_ = true;
}

void ShardedDemuxer::rotate_steering_seed() {
  steering_.seed = net::next_seed(steering_.seed);
  if (size() != 0) misplaced_possible_ = true;
}

}  // namespace tcpdemux::core
