// Partridge & Pink's last-sent/last-received cache (paper §3.3).
//
// The BSD linear list augmented with *two* one-entry caches: the PCB of the
// last packet received and the PCB of the last packet sent. Probe order is
// segment-kind aware (footnote 5): data segments probe the receive-side
// cache first; pure acknowledgements probe the send-side cache first.
//
// The miss penalty is (N+5)/2 — both caches plus the (N+1)/2 average chain
// scan — which is why the algorithm converges to (slightly worse than) BSD
// as the TPC/A user count grows and packet trains disappear.
#ifndef TCPDEMUX_CORE_SEND_RECEIVE_CACHE_H_
#define TCPDEMUX_CORE_SEND_RECEIVE_CACHE_H_

#include "core/demuxer.h"
#include "core/pcb_list.h"

namespace tcpdemux::core {

class SendReceiveCacheDemuxer final : public Demuxer {
 public:
  Pcb* insert(const net::FlowKey& key) override;
  bool erase(const net::FlowKey& key) override;
  using Demuxer::lookup;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override;
  void note_sent(Pcb* pcb) override { send_cache_ = pcb; }
  LookupResult lookup_wildcard(const net::FlowKey& key) override;
  [[nodiscard]] std::size_t size() const override { return list_.size(); }
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override;
  [[nodiscard]] std::string name() const override { return "srcache"; }
  [[nodiscard]] std::size_t memory_bytes() const override {
    return size() * sizeof(Pcb) + sizeof(*this);
  }

  [[nodiscard]] const Pcb* receive_cached() const noexcept {
    return recv_cache_;
  }
  [[nodiscard]] const Pcb* send_cached() const noexcept { return send_cache_; }

 private:
  friend class StructuralValidator;   // src/core/validate.h
  friend struct ValidatorTestAccess;  // negative validator tests only

  /// Probes one cache slot; returns true on hit.
  static bool probe(Pcb* slot, const net::FlowKey& key,
                    LookupResult& r) noexcept;

  PcbList list_;
  Pcb* recv_cache_ = nullptr;
  Pcb* send_cache_ = nullptr;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_SEND_RECEIVE_CACHE_H_
