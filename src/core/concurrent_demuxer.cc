#include "core/concurrent_demuxer.h"

#include <stdexcept>

namespace tcpdemux::core {

ConcurrentSequentDemuxer::ConcurrentSequentDemuxer(Options options)
    : options_(options) {
  if (options_.chains == 0) {
    throw std::invalid_argument(
        "ConcurrentSequentDemuxer: chain count must be >= 1");
  }
  buckets_.reserve(options_.chains);
  for (std::uint32_t i = 0; i < options_.chains; ++i) {
    buckets_.push_back(std::make_unique<Bucket>());
  }
}

Pcb* ConcurrentSequentDemuxer::insert(const net::FlowKey& key) {
  Bucket& b = *buckets_[chain_of(key)];
  const MutexLock lock(b.mutex);
  if (b.list.find_scan(key).pcb != nullptr) return nullptr;
  Pcb* pcb = b.list.emplace_front(
      key, conn_seq_.fetch_add(1, std::memory_order_relaxed));
  size_.fetch_add(1, std::memory_order_relaxed);
  return pcb;
}

bool ConcurrentSequentDemuxer::erase(const net::FlowKey& key) {
  Bucket& b = *buckets_[chain_of(key)];
  const MutexLock lock(b.mutex);
  const auto scan = b.list.find_scan(key);
  if (scan.pcb == nullptr) return false;
  if (b.cache == scan.pcb) b.cache = nullptr;
  b.list.erase(scan.pcb);
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

LookupResult ConcurrentSequentDemuxer::lookup(const net::FlowKey& key,
                                              SegmentKind /*kind*/) {
  Bucket& b = *buckets_[chain_of(key)];
  LookupResult r;
  {
    const MutexLock lock(b.mutex);
    if (options_.per_chain_cache && b.cache != nullptr) {
      ++r.examined;
      if (b.cache->key == key) {
        r.pcb = b.cache;
        r.cache_hit = true;
      }
    }
    if (r.pcb == nullptr) {
      const auto scan = b.list.find_scan(key);
      r.examined += scan.examined;
      r.pcb = scan.pcb;
      if (options_.per_chain_cache && scan.pcb != nullptr) {
        b.cache = scan.pcb;
      }
    }
  }
  lookups_.fetch_add(1, std::memory_order_relaxed);
  examined_.fetch_add(r.examined, std::memory_order_relaxed);
  return r;
}

std::string ConcurrentSequentDemuxer::name() const {
  return "concurrent_sequent(h=" + std::to_string(options_.chains) + "," +
         std::string(net::hasher_name(options_.hasher)) + ")";
}

}  // namespace tcpdemux::core
