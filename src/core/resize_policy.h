// Shared tuning for bounded-pause incremental resize (see DESIGN.md
// "Incremental resize & degradation ladder"). Every growing backend
// (dynamic, flat, flat16, cuckoo) drains its outgoing table with the same
// batch discipline so the worst-case per-operation pause is O(batch)
// regardless of table size.
#ifndef TCPDEMUX_CORE_RESIZE_POLICY_H_
#define TCPDEMUX_CORE_RESIZE_POLICY_H_

#include <cstddef>
#include <cstdint>

namespace tcpdemux::core {

/// Entries migrated per insert/erase (the operations that already paid for
/// a structural write); bounds the tail of the mutation path.
inline constexpr std::size_t kMigrateBatch = 8;

/// Entries migrated per lookup — kept minimal because lookups are the
/// latency-critical path the ladder exists to protect.
inline constexpr std::size_t kMigrateLookupBatch = 1;

/// Empty slots/buckets the drain cursor may skip per unit of batch budget
/// before yielding; bounds a batch's work even over sparse regions.
inline constexpr std::size_t kMigrateScanFactor = 64;

/// Allocator-retry backoff window, in inserts: after a new-table
/// allocation fails, the next attempt waits kGrowBackoffMin inserts,
/// doubling per failure up to kGrowBackoffMax (ladder rung 1,
/// defer-and-retry). Rung 2 — shed at the hard watermark — engages only
/// while growth stays blocked.
inline constexpr std::uint64_t kGrowBackoffMin = 16;
inline constexpr std::uint64_t kGrowBackoffMax = 4096;

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_RESIZE_POLICY_H_
