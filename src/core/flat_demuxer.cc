#include "core/flat_demuxer.h"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>
#include <utility>

#include "core/fault_inject.h"
#include "core/prefetch.h"
#include "core/resize_policy.h"
#include "core/simd.h"

namespace tcpdemux::core {
namespace {

constexpr std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlatDemuxer::FlatDemuxer(Options options) : options_(options) {
  if (options_.initial_capacity == 0) {
    throw std::invalid_argument("FlatDemuxer: capacity must be >= 1");
  }
  const std::size_t capacity =
      round_up_pow2(std::max(options_.initial_capacity, kMinCapacity));
  mask_ = capacity - 1;
  tags_.assign(capacity, 0);
  hashes_.assign(capacity, 0);
  keys_.assign(capacity, net::FlowKey{});
  pcbs_.resize(capacity);
}

FlatDemuxer::Probe FlatDemuxer::find_slot(
    std::uint32_t h, const net::FlowKey& key) const noexcept {
  if (options_.group_probe) return find_slot_grouped(h, key);
  Probe r;
  const std::uint8_t tag = tag_of(h);
  std::size_t i = h & mask_;
  std::size_t dist = 0;
  while (dist <= mask_) {
    const std::uint8_t t = tags_[i];
    if (t == 0) return r;  // empty slot terminates the probe run
    if (t == tag) {
      ++r.examined;
      if (keys_[i] == key) {
        r.slot = i;
        return r;
      }
    }
    // Robin-hood bound: residents are ordered by displacement, so a
    // resident closer to its own home than we are to ours proves the key
    // was never placed at or beyond this slot.
    if (probe_distance(i) < dist) return r;
    i = (i + 1) & mask_;
    ++dist;
  }
  return r;  // unreachable in a well-formed table (load factor < 1)
}

FlatDemuxer::Probe FlatDemuxer::find_slot_grouped(
    std::uint32_t h, const net::FlowKey& key) const noexcept {
  Probe r;
  const std::uint8_t tag = tag_of(h);
  const std::size_t home = h & mask_;
  std::size_t base = home & ~(kGroupWidth - 1);
  // The home group starts mid-run: slots before `home` belong to earlier
  // probe runs, so mask them out of both the match and empty views.
  std::uint32_t live = 0xffffU << (home - base);
  const std::size_t groups = capacity() / kGroupWidth;
  for (std::size_t g = 0; g < groups; ++g) {
    std::uint32_t match = group_match(&tags_[base], tag) & live;
    const std::uint32_t empty = group_empty(&tags_[base]) & live;
    if (empty != 0) {
      // The probe run ends at the first empty slot; fingerprint matches
      // beyond it are residents of later runs and cannot be our key.
      match &= (empty & (0U - empty)) - 1;
    }
    while (match != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(match));
      ++r.examined;
      if (keys_[base + bit] == key) {
        r.slot = base + bit;
        return r;
      }
      match &= match - 1;
    }
    if (empty != 0) return r;  // run exhausted without a key match: absent
    base = (base + kGroupWidth) & mask_;
    live = 0xffffU;
  }
  return r;  // unreachable: load factor < 1 guarantees an empty slot
}

Pcb* FlatDemuxer::insert(const net::FlowKey& key) {
  std::uint32_t h = hash_of(key);
  if (find_slot(h, key).slot != kNpos) return nullptr;
  if (old_ != nullptr && find_slot_old(h, key).slot != kNpos) return nullptr;
  if (options_.max_pcbs != 0 && size_ >= options_.max_pcbs) {
    ++inserts_shed_;
    telemetry_->on_shed();
    return nullptr;
  }
  if (FaultInjector::instance().poll_alloc()) return nullptr;
  maybe_grow();
  // Ladder rung 2: growth is allocation-blocked and the array has hit its
  // hard 15/16 watermark — shed rather than let probe runs degrade
  // unboundedly toward a full table.
  if (grow_blocked_ && (size_ + 1) * 16 > capacity() * 15) {
    ++inserts_shed_;
    telemetry_->on_shed();
    return nullptr;
  }
  auto pcb = std::make_unique<Pcb>(key, next_conn_id());
  Pcb* const raw = pcb.get();
  const std::size_t dist = place(h, key, std::move(pcb));
  ++size_;
  telemetry_->on_insert();
  note_insert(dist);
  if (old_ != nullptr) [[unlikely]] migrate_batch(kMigrateBatch);
  return raw;
}

void FlatDemuxer::maybe_grow() {
  // Grow at 7/8 occupancy: beyond that, probe runs lengthen sharply and
  // the tag array stops saving traffic.
  if ((size_ + 1) * 8 <= capacity() * 7) return;
  if (!options_.incremental) {
    grow();
    return;
  }
  if (old_ != nullptr) {
    // The *new* array itself hit the trigger while the old one still
    // drains: churn outpaced migration. Finish the drain (bounded by the
    // remaining debt), then start the next doubling below.
    finish_migration();
  }
  if (grow_blocked_ && grow_retry_in_ > 0) {
    --grow_retry_in_;
    return;
  }
  start_migration();
}

bool FlatDemuxer::start_migration() {
  if (FaultInjector::instance().poll_alloc()) {
    defer_migration();
    return false;
  }
  const std::size_t cap = capacity() * 2;
  std::unique_ptr<OldTable> old;
  std::vector<std::uint8_t> tags;
  std::vector<std::uint32_t> hashes;
  std::vector<net::FlowKey> keys;
  std::vector<std::unique_ptr<Pcb>> pcbs;
  try {
    old = std::make_unique<OldTable>();
    tags.assign(cap, 0);
    hashes.assign(cap, 0);
    keys.assign(cap, net::FlowKey{});
    pcbs.resize(cap);
  } catch (const std::bad_alloc&) {
    defer_migration();
    return false;
  }
  // Everything allocated: swing the live array behind the drain cursor.
  // No failure path from here on, so no intermediate state can leak.
  old->mask = mask_;
  old->residents = size_;
  old->tags = std::move(tags_);
  old->hashes = std::move(hashes_);
  old->keys = std::move(keys_);
  old->pcbs = std::move(pcbs_);
  old_ = std::move(old);
  mask_ = cap - 1;
  tags_ = std::move(tags);
  hashes_ = std::move(hashes);
  keys_ = std::move(keys);
  pcbs_ = std::move(pcbs);
  grow_blocked_ = false;
  grow_backoff_ = 0;
  grow_retry_in_ = 0;
  telemetry_->on_resize_start();
  return true;
}

void FlatDemuxer::defer_migration() {
  grow_blocked_ = true;
  grow_backoff_ =
      grow_backoff_ == 0
          ? kGrowBackoffMin
          : std::min<std::uint64_t>(grow_backoff_ * 2, kGrowBackoffMax);
  grow_retry_in_ = grow_backoff_;
  telemetry_->on_resize_defer();
}

void FlatDemuxer::migrate_batch(std::size_t budget) {
  if (old_ == nullptr) return;
  OldTable& old = *old_;
  std::size_t moved = 0;
  std::size_t scanned = 0;
  const std::size_t scan_budget = budget * kMigrateScanFactor;
  while (moved < budget && old.residents > 0) {
    // residents > 0 guarantees an occupied slot at or past the cursor:
    // nothing is ever placed into the old array, and backward-shift only
    // vacates slots, so the drained prefix [0, cursor) never refills.
    if (old.tags[old.cursor] == 0) {
      ++old.cursor;
      if (++scanned >= scan_budget) break;
      continue;
    }
    const std::size_t i = old.cursor;
    const std::uint32_t h = old.hashes[i];
    const net::FlowKey key = old.keys[i];
    std::unique_ptr<Pcb> pcb = std::move(old.pcbs[i]);
    // Copy-place into the new array first, then clear the old slot; the
    // old array stays intact up to the moment the entry is live in the
    // new one. Placement into the preallocated array cannot allocate.
    place(h, key, std::move(pcb));
    remove_at_old(i);
    --old.residents;
    ++moved;
  }
  telemetry_->on_resize_step(moved, old.residents);
  if (old.residents == 0) {
    old_.reset();
    telemetry_->on_resize_complete();
  }
}

void FlatDemuxer::finish_migration() {
  while (old_ != nullptr) migrate_batch(old_->residents + 1);
}

bool FlatDemuxer::migration_step() {
  migrate_batch(kMigrateBatch);
  return old_ != nullptr;
}

FlatDemuxer::Probe FlatDemuxer::find_slot_old(
    std::uint32_t h, const net::FlowKey& key) const noexcept {
  const OldTable& old = *old_;
  Probe r;
  const std::uint8_t tag = tag_of(h);
  std::size_t i = h & old.mask;
  std::size_t dist = 0;
  while (dist <= old.mask) {
    const std::uint8_t t = old.tags[i];
    if (t == 0) return r;
    if (t == tag) {
      ++r.examined;
      if (old.keys[i] == key) {
        r.slot = i;
        return r;
      }
    }
    if (old.probe_distance(i) < dist) return r;
    i = (i + 1) & old.mask;
    ++dist;
  }
  return r;
}

void FlatDemuxer::remove_at_old(std::size_t i) {
  OldTable& old = *old_;
  old.pcbs[i].reset();
  std::size_t j = i;
  while (true) {
    const std::size_t n = (j + 1) & old.mask;
    if (old.tags[n] == 0 || old.probe_distance(n) == 0) break;
    old.tags[j] = old.tags[n];
    old.hashes[j] = old.hashes[n];
    old.keys[j] = old.keys[n];
    old.pcbs[j] = std::move(old.pcbs[n]);
    j = n;
  }
  old.tags[j] = 0;
  old.pcbs[j].reset();
}

std::size_t FlatDemuxer::place(std::uint32_t h, net::FlowKey key,
                               std::unique_ptr<Pcb> pcb) {
  std::size_t i = h & mask_;
  std::size_t dist = 0;
  std::size_t max_dist = 0;
  while (tags_[i] != 0) {
    const std::size_t d = probe_distance(i);
    if (d < dist) {
      // Rob the rich: the resident is closer to home than we are, so it
      // can better afford the longer walk. Swap and keep placing it.
      std::swap(h, hashes_[i]);
      std::swap(key, keys_[i]);
      std::swap(pcb, pcbs_[i]);
      tags_[i] = tag_of(hashes_[i]);
      dist = d;
    }
    i = (i + 1) & mask_;
    ++dist;
    max_dist = std::max(max_dist, dist);
  }
  tags_[i] = tag_of(h);
  hashes_[i] = h;
  keys_[i] = key;
  pcbs_[i] = std::move(pcb);
  return max_dist;
}

void FlatDemuxer::note_insert(std::size_t place_distance) {
  watermark_ = std::max<std::uint64_t>(watermark_, place_distance);
  ++inserts_since_rehash_;
  if (options_.rehash_on_overload && watermark_ > watermark_limit() &&
      inserts_since_rehash_ >= rehash_cooldown_) {
    rehash_with_fresh_seed();
  }
}

void FlatDemuxer::rehash_with_fresh_seed() {
  // The old array's stored hashes were computed under the outgoing seed;
  // re-probing it after rotation would miss every resident. Drain it
  // first (rare: requires an overload trigger mid-migration).
  finish_migration();
  options_.hasher.seed = net::next_seed(options_.hasher.seed);
  const std::size_t cap = capacity();
  std::vector<std::uint8_t> old_tags = std::move(tags_);
  std::vector<net::FlowKey> old_keys = std::move(keys_);
  std::vector<std::unique_ptr<Pcb>> old_pcbs = std::move(pcbs_);
  tags_.assign(cap, 0);
  hashes_.assign(cap, 0);
  keys_.assign(cap, net::FlowKey{});
  pcbs_.clear();
  pcbs_.resize(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    if (old_tags[i] == 0) continue;
    // Hashes must be recomputed: the seed just changed.
    place(hash_of(old_keys[i]), old_keys[i], std::move(old_pcbs[i]));
  }
  watermark_ = max_probe_distance();
  ++overload_rehashes_;
  telemetry_->on_rehash();
  inserts_since_rehash_ = 0;
  // Hysteresis: even if every key collides under every seed (full-32-bit
  // collisions survive the seeded post-mix of non-SipHash kinds), at most
  // one rehash per `limit` further inserts — bounded thrash.
  rehash_cooldown_ = watermark_limit();
}

ResilienceStats FlatDemuxer::resilience() const {
  return {overload_rehashes_, inserts_shed_, watermark_, watermark_limit()};
}

bool FlatDemuxer::erase(const net::FlowKey& key) {
  const std::uint32_t h = hash_of(key);
  const Probe p = find_slot(h, key);
  if (p.slot != kNpos) {
    remove_at(p.slot);
  } else {
    if (old_ == nullptr) return false;
    const Probe q = find_slot_old(h, key);
    if (q.slot == kNpos) return false;
    remove_at_old(q.slot);
    if (--old_->residents == 0) {
      old_.reset();
      telemetry_->on_resize_complete();
    }
  }
  --size_;
  telemetry_->on_erase();
  if (old_ != nullptr) [[unlikely]] migrate_batch(kMigrateBatch);
  return true;
}

void FlatDemuxer::remove_at(std::size_t i) {
  pcbs_[i].reset();
  // Backward shift: slide the rest of the probe run down one slot so no
  // tombstone is needed. The run ends at an empty slot or a resident
  // already sitting in its home slot (which a shift would only hurt).
  std::size_t j = i;
  while (true) {
    const std::size_t n = (j + 1) & mask_;
    if (tags_[n] == 0 || probe_distance(n) == 0) break;
    tags_[j] = tags_[n];
    hashes_[j] = hashes_[n];
    keys_[j] = keys_[n];
    pcbs_[j] = std::move(pcbs_[n]);
    j = n;
  }
  tags_[j] = 0;
  pcbs_[j].reset();
}

void FlatDemuxer::grow() {
  const std::size_t old_capacity = capacity();
  std::vector<std::uint8_t> old_tags = std::move(tags_);
  std::vector<std::uint32_t> old_hashes = std::move(hashes_);
  std::vector<net::FlowKey> old_keys = std::move(keys_);
  std::vector<std::unique_ptr<Pcb>> old_pcbs = std::move(pcbs_);

  const std::size_t capacity = old_capacity * 2;
  mask_ = capacity - 1;
  tags_.assign(capacity, 0);
  hashes_.assign(capacity, 0);
  keys_.assign(capacity, net::FlowKey{});
  pcbs_.clear();
  pcbs_.resize(capacity);

  for (std::size_t i = 0; i < old_capacity; ++i) {
    if (old_tags[i] == 0) continue;
    place(old_hashes[i], old_keys[i], std::move(old_pcbs[i]));
  }
}

LookupResult FlatDemuxer::lookup(const net::FlowKey& key,
                                 SegmentKind /*kind*/) {
  const std::uint32_t h = hash_of(key);
  const Probe p = find_slot(h, key);
  LookupResult r;
  r.examined = p.examined;
  if (p.slot != kNpos) {
    r.pcb = pcbs_[p.slot].get();
  } else if (old_ != nullptr) [[unlikely]] {
    // Mid-migration a resident may still sit in the draining array; both
    // probes' examined counts are charged (the paper's metric counts every
    // key compared, whichever array holds it).
    const Probe q = find_slot_old(h, key);
    r.examined += q.examined;
    if (q.slot != kNpos) r.pcb = old_->pcbs[q.slot].get();
  }
  note_lookup(r);
  if (old_ != nullptr) [[unlikely]] migrate_batch(kMigrateLookupBatch);
  return r;
}

void FlatDemuxer::lookup_batch(std::span<const net::FlowKey> keys,
                               std::span<LookupResult> results,
                               SegmentKind kind) {
  if (old_ != nullptr) [[unlikely]] {
    // Mid-migration the pipelined prefetch would have to target both
    // arrays; take the scalar path, which also paces the drain (one
    // migrated entry per lookup). Results and stats stay bit-identical
    // to per-packet lookup() by construction.
    for (std::size_t i = 0; i < keys.size(); ++i) {
      results[i] = lookup(keys[i], kind);
    }
    return;
  }
  // Pipeline: hash the whole chunk and issue prefetches for every home
  // slot's tag and key lines, then probe. By the time the first probe
  // dereferences its slot the remaining loads are already in flight, so a
  // burst pays ~one DRAM latency instead of one per packet.
  constexpr std::size_t kChunk = 16;
  std::array<std::uint32_t, kChunk> h;
  for (std::size_t base = 0; base < keys.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, keys.size() - base);
    for (std::size_t i = 0; i < n; ++i) {
      h[i] = hash_of(keys[base + i]);
      const std::size_t home = h[i] & mask_;
      prefetch_read(&tags_[home]);
      prefetch_read(&hashes_[home]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      prefetch_read(&keys_[h[i] & mask_]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const Probe p = find_slot(h[i], keys[base + i]);
      LookupResult r;
      r.examined = p.examined;
      if (p.slot != kNpos) r.pcb = pcbs_[p.slot].get();
      note_lookup(r);
      results[base + i] = r;
    }
  }
}

LookupResult FlatDemuxer::lookup_wildcard(const net::FlowKey& key) {
  // Exact probe first (cheap), then BSD best-match over every resident:
  // wildcard-bearing keys hash elsewhere, so nothing short of a sweep can
  // find them — exactly the chained demuxers' all-chains fallback. Both
  // arrays are probed and swept while a migration drains.
  const std::uint32_t h = hash_of(key);
  const Probe p = find_slot(h, key);
  LookupResult best;
  best.examined = p.examined;
  if (p.slot != kNpos) {
    best.pcb = pcbs_[p.slot].get();
    return best;
  }
  if (old_ != nullptr) {
    const Probe q = find_slot_old(h, key);
    best.examined += q.examined;
    if (q.slot != kNpos) {
      best.pcb = old_->pcbs[q.slot].get();
      return best;
    }
  }
  int best_score = -1;
  const auto sweep = [&](const std::vector<std::uint8_t>& tags,
                         const std::vector<net::FlowKey>& table_keys,
                         const std::vector<std::unique_ptr<Pcb>>& table_pcbs) {
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (tags[i] == 0) continue;
      ++best.examined;
      const int score = table_keys[i].match_score(key);
      if (score < 0) continue;
      if (score == 0) {
        best.pcb = table_pcbs[i].get();
        return true;
      }
      if (best_score < 0 || score < best_score) {
        best_score = score;
        best.pcb = table_pcbs[i].get();
      }
    }
    return false;
  };
  if (sweep(tags_, keys_, pcbs_)) return best;
  if (old_ != nullptr) sweep(old_->tags, old_->keys, old_->pcbs);
  return best;
}

void FlatDemuxer::for_each_pcb(
    const std::function<void(const Pcb&)>& fn) const {
  for (std::size_t i = 0; i <= mask_; ++i) {
    if (tags_[i] != 0) fn(*pcbs_[i]);
  }
  if (old_ == nullptr) return;
  for (std::size_t i = 0; i <= old_->mask; ++i) {
    if (old_->tags[i] != 0) fn(*old_->pcbs[i]);
  }
}

std::size_t FlatDemuxer::max_probe_distance() const noexcept {
  std::size_t max = 0;
  for (std::size_t i = 0; i <= mask_; ++i) {
    if (tags_[i] != 0) max = std::max(max, probe_distance(i));
  }
  if (old_ != nullptr) {
    for (std::size_t i = 0; i <= old_->mask; ++i) {
      if (old_->tags[i] != 0) max = std::max(max, old_->probe_distance(i));
    }
  }
  return max;
}

std::vector<std::size_t> FlatDemuxer::occupancy() const {
  std::vector<std::size_t> runs;
  if (size_ == 0) return runs;
  // Start at an empty slot so a run wrapping the table end is not split
  // in two; a full table is one run. During a migration the old array's
  // runs are appended after the live array's, so the total still sums to
  // size() and skew reflects both generations.
  const auto append_runs = [&runs](const std::vector<std::uint8_t>& tags,
                                   std::size_t mask) {
    const std::size_t cap = mask + 1;
    std::size_t start = 0;
    while (start < cap && tags[start] != 0) ++start;
    if (start == cap) {
      runs.push_back(cap);
      return;
    }
    std::size_t run = 0;
    for (std::size_t n = 0; n < cap; ++n) {
      const std::size_t i = (start + n) & mask;
      if (tags[i] != 0) {
        ++run;
      } else if (run != 0) {
        runs.push_back(run);
        run = 0;
      }
    }
    if (run != 0) runs.push_back(run);
  };
  append_runs(tags_, mask_);
  if (old_ != nullptr) append_runs(old_->tags, old_->mask);
  return runs;
}

std::size_t FlatDemuxer::memory_bytes() const {
  constexpr std::size_t kPerSlot =
      sizeof(std::uint8_t) + sizeof(std::uint32_t) + sizeof(net::FlowKey) +
      sizeof(std::unique_ptr<Pcb>);
  std::size_t bytes = size_ * sizeof(Pcb) + sizeof(*this) +
                      capacity() * kPerSlot;
  if (old_ != nullptr) {
    bytes += sizeof(OldTable) + old_->capacity() * kPerSlot;
  }
  return bytes;
}

std::string FlatDemuxer::name() const {
  std::string n = options_.group_probe ? "flat16(cap=" : "flat(cap=";
  n += std::to_string(capacity());
  n += ',';
  n += net::hash_spec_name(options_.hasher);
  if (options_.rehash_on_overload) n += ",rehash";
  if (options_.max_pcbs != 0) n += ",max=" + std::to_string(options_.max_pcbs);
  if (options_.incremental) n += ",incremental";
  n += ')';
  return n;
}

}  // namespace tcpdemux::core
