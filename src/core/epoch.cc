#include "core/epoch.h"

#include <thread>

namespace tcpdemux::core {
namespace {

std::atomic<std::uint64_t> next_manager_id{1};

// Per-thread cache mapping manager id -> that thread's slot, so a pin
// after the first is a couple of loads plus the slot stores. Manager ids
// are never reused, so a stale entry (manager destroyed) can never match
// a live manager.
struct SlotCacheEntry {
  std::uint64_t manager_id;
  void* slot;
};

thread_local std::vector<SlotCacheEntry> tls_slot_cache;

}  // namespace

EpochManager::EpochManager()
    : id_(next_manager_id.fetch_add(1, std::memory_order_relaxed)) {}

EpochManager::~EpochManager() {
  const MutexLock lock(mutex_);
  for (auto& bucket : limbo_) free_bucket(bucket);
}

EpochManager::Slot* EpochManager::slot_for_this_thread() {
  // Newest-first: a thread typically works against the manager it
  // registered with most recently, and entries for destroyed managers
  // (never matched again) accumulate at the front.
  for (auto it = tls_slot_cache.rbegin(); it != tls_slot_cache.rend(); ++it) {
    if (it->manager_id == id_) return static_cast<Slot*>(it->slot);
  }
  const MutexLock lock(mutex_);
  slots_.push_back(std::make_unique<Slot>());
  Slot* slot = slots_.back().get();
  tls_slot_cache.push_back(SlotCacheEntry{id_, slot});
  return slot;
}

void EpochManager::pin(Slot& slot) noexcept {
  // Publish "active at epoch e", then confirm e is still current; loop
  // otherwise. On exit the global epoch equalled our published epoch at
  // some point after the publication, so any later advance scan sees us
  // and cannot move more than one epoch ahead while we stay pinned.
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot.state.store((e << 1) | kActiveBit, std::memory_order_seq_cst);
    const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == e) return;
    e = now;
  }
}

void EpochManager::unpin(Slot& slot) noexcept {
  // Release (not seq_cst: this is the read-side hot path) so every
  // read-side access precedes the store; the advance scan's seq_cst load
  // of this slot acquires it, ordering those accesses before any
  // subsequent free. A scanner that instead reads the stale "active"
  // value merely declines to advance — delayed reclamation, never unsafe.
  slot.state.store(slot.state.load(std::memory_order_relaxed) & ~kActiveBit,
                   std::memory_order_release);
}

EpochManager::Guard::Guard(EpochManager& manager)
    : manager_(&manager), slot_(manager.slot_for_this_thread()) {
  if (slot_->nest++ == 0) manager_->pin(*slot_);
}

EpochManager::Guard::~Guard() {
  if (--slot_->nest == 0) manager_->unpin(*slot_);
}

void EpochManager::retire(void* ptr, void (*deleter)(void*)) {
  {
    const MutexLock lock(mutex_);
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    limbo_[e % 3].push_back(Retired{ptr, deleter});
  }
  retired_.fetch_add(1, std::memory_order_relaxed);
  try_advance();
}

bool EpochManager::try_advance() {
  const MutexLock lock(mutex_);
  const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (const auto& slot : slots_) {
    const std::uint64_t s = slot->state.load(std::memory_order_seq_cst);
    if ((s & kActiveBit) != 0 && (s >> 1) != e) return false;
  }
  // Every active reader has observed e, so nothing pinned at e-1 remains
  // and the bucket retired under e-2 (== (e+1) mod 3) is unreachable.
  // Free it before publishing e+1; readers that pin at e+1 synchronize
  // with the store below and can therefore never have touched it.
  free_bucket(limbo_[(e + 1) % 3]);
  global_epoch_.store(e + 1, std::memory_order_seq_cst);
  return true;
}

void EpochManager::drain() {
  while (pending_count() > 0) {
    if (!try_advance()) std::this_thread::yield();
  }
}

void EpochManager::free_bucket(std::vector<Retired>& bucket) {
  if (bucket.empty()) return;
  for (const Retired& r : bucket) r.deleter(r.ptr);
  freed_.fetch_add(bucket.size(), std::memory_order_relaxed);
  bucket.clear();
}

std::size_t EpochManager::registered_threads() const {
  const MutexLock lock(mutex_);
  return slots_.size();
}

std::size_t EpochManager::memory_bytes() const {
  const MutexLock lock(mutex_);
  std::size_t bytes = sizeof(*this) + slots_.capacity() * sizeof(Slot);
  for (const auto& bucket : limbo_) {
    bytes += bucket.capacity() * sizeof(Retired);
  }
  return bytes;
}

}  // namespace tcpdemux::core
