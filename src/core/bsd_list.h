// The 4.3BSD-Reno PCB lookup algorithm (paper §3.1).
//
// A single linear list of PCBs plus a one-entry cache holding the PCB last
// found. New PCBs are inserted at the head. Expected cost under uniformly
// random lookups over N connections: C(N) = 1 + (N²−1)/(2N)  (Equation 1),
// approaching N/2 — 1001 examined PCBs for a 2,000-user TPC/A run.
#ifndef TCPDEMUX_CORE_BSD_LIST_H_
#define TCPDEMUX_CORE_BSD_LIST_H_

#include "core/demuxer.h"
#include "core/pcb_list.h"

namespace tcpdemux::core {

class BsdListDemuxer final : public Demuxer {
 public:
  Pcb* insert(const net::FlowKey& key) override;
  bool erase(const net::FlowKey& key) override;
  using Demuxer::lookup;
  LookupResult lookup(const net::FlowKey& key, SegmentKind kind) override;
  LookupResult lookup_wildcard(const net::FlowKey& key) override;
  [[nodiscard]] std::size_t size() const override { return list_.size(); }
  void for_each_pcb(
      const std::function<void(const Pcb&)>& fn) const override;
  [[nodiscard]] std::string name() const override { return "bsd"; }
  [[nodiscard]] std::size_t memory_bytes() const override {
    return size() * sizeof(Pcb) + sizeof(*this);
  }

  /// The PCB currently held by the one-entry cache (test hook).
  [[nodiscard]] const Pcb* cached() const noexcept { return cache_; }

 private:
  friend class StructuralValidator;   // src/core/validate.h
  friend struct ValidatorTestAccess;  // negative validator tests only

  PcbList list_;
  Pcb* cache_ = nullptr;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_BSD_LIST_H_
