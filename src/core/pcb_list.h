// PcbList: an owning, intrusive, doubly linked list of PCBs with
// examined-count accounting.
//
// Every list-structured demuxer in the paper (BSD, move-to-front,
// send/receive cache, each Sequent hash chain) is built on this primitive.
// find_scan() returns how many PCBs the linear scan touched — the paper's
// figure of merit — so the demuxers only add their cache-probe accounting
// on top.
#ifndef TCPDEMUX_CORE_PCB_LIST_H_
#define TCPDEMUX_CORE_PCB_LIST_H_

#include <cstdint>
#include <utility>

#include "core/pcb.h"
#include "net/flow_key.h"

namespace tcpdemux::core {

class PcbList {
 public:
  /// Result of a linear scan: the PCB found (or nullptr) and the number of
  /// list nodes whose keys were inspected (the found node included).
  struct ScanResult {
    Pcb* pcb = nullptr;
    std::uint32_t examined = 0;
  };

  PcbList() noexcept = default;
  ~PcbList();

  PcbList(const PcbList&) = delete;
  PcbList& operator=(const PcbList&) = delete;
  PcbList(PcbList&& other) noexcept;
  PcbList& operator=(PcbList&& other) noexcept;

  /// Allocates a PCB for `key` and links it at the head (BSD inserts new
  /// PCBs at the front of the list). The list owns the PCB.
  Pcb* emplace_front(const net::FlowKey& key, std::uint64_t conn_id);

  /// Linear scan for an exact key match, counting every node inspected.
  [[nodiscard]] ScanResult find_scan(const net::FlowKey& key) const noexcept;

  /// Linear scan for the best wildcard match (BSD in_pcblookup semantics):
  /// the matching PCB with the fewest wildcard fields wins; earlier nodes
  /// win ties. Counts every node inspected (always the full list unless an
  /// exact match short-circuits).
  [[nodiscard]] ScanResult find_best_match(
      const net::FlowKey& key) const noexcept;

  /// Unlinks `pcb` and relinks it at the head (Crowcroft's heuristic).
  /// `pcb` must be a member of this list.
  void move_to_front(Pcb* pcb) noexcept;

  /// Unlinks and destroys `pcb`. `pcb` must be a member of this list.
  void erase(Pcb* pcb) noexcept;

  /// Unlinks the head and transfers ownership to the caller (nullptr when
  /// empty). Used by rehashing demuxers to move PCBs between chains
  /// without reallocating them.
  [[nodiscard]] Pcb* extract_front() noexcept;

  /// Takes ownership of a detached PCB (as returned by extract_front) and
  /// links it at the head.
  void adopt_front(Pcb* pcb) noexcept;

  /// Destroys all PCBs.
  void clear() noexcept;

  [[nodiscard]] Pcb* head() const noexcept { return head_; }
  [[nodiscard]] Pcb* tail() const noexcept { return tail_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Calls `fn(Pcb&)` for every PCB in list order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (Pcb* p = head_; p != nullptr; p = p->next) {
      fn(*p);
    }
  }

 private:
  void unlink(Pcb* pcb) noexcept;
  void link_front(Pcb* pcb) noexcept;

  Pcb* head_ = nullptr;
  Pcb* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_PCB_LIST_H_
