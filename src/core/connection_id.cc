#include "core/connection_id.h"

#include "core/fault_inject.h"

#include <stdexcept>

namespace tcpdemux::core {

ConnectionIdDemuxer::ConnectionIdDemuxer(std::size_t capacity)
    : capacity_(capacity), slots_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("ConnectionIdDemuxer: capacity must be >= 1");
  }
  free_ids_.reserve(capacity);
  for (std::size_t i = capacity; i-- > 0;) {
    free_ids_.push_back(static_cast<std::uint32_t>(i));
  }
}

Pcb* ConnectionIdDemuxer::insert(const net::FlowKey& key) {
  if (id_by_key_.contains(key)) return nullptr;
  if (free_ids_.empty()) return nullptr;  // ID space exhausted
  if (FaultInjector::instance().poll_alloc()) return nullptr;
  const std::uint32_t id = free_ids_.back();
  free_ids_.pop_back();
  slots_[id] = std::make_unique<Pcb>(key, id);
  id_by_key_.emplace(key, id);
  telemetry_->on_insert();
  return slots_[id].get();
}

bool ConnectionIdDemuxer::erase(const net::FlowKey& key) {
  const auto it = id_by_key_.find(key);
  if (it == id_by_key_.end()) return false;
  const std::uint32_t id = it->second;
  slots_[id].reset();
  free_ids_.push_back(id);
  id_by_key_.erase(it);
  telemetry_->on_erase();
  return true;
}

LookupResult ConnectionIdDemuxer::lookup(const net::FlowKey& key,
                                         SegmentKind /*kind*/) {
  LookupResult r;
  r.examined = 1;  // the single array slot the carried ID indexes
  const auto it = id_by_key_.find(key);
  if (it != id_by_key_.end()) {
    r.pcb = slots_[it->second].get();
  }
  note_lookup(r);
  return r;
}

LookupResult ConnectionIdDemuxer::lookup_wildcard(const net::FlowKey& key) {
  // Connection-ID protocols have no wildcard path (connection setup carries
  // the ID explicitly); fall back to scanning the slot table.
  LookupResult best;
  int best_score = -1;
  for (const auto& slot : slots_) {
    if (slot == nullptr) continue;
    ++best.examined;
    const int score = slot->key.match_score(key);
    if (score < 0) continue;
    if (score == 0) {
      best.pcb = slot.get();
      return best;
    }
    if (best_score < 0 || score < best_score) {
      best_score = score;
      best.pcb = slot.get();
    }
  }
  return best;
}

Pcb* ConnectionIdDemuxer::lookup_by_id(std::uint32_t id) const noexcept {
  if (id >= capacity_) return nullptr;
  return slots_[id].get();
}

void ConnectionIdDemuxer::for_each_pcb(
    const std::function<void(const Pcb&)>& fn) const {
  for (const auto& slot : slots_) {
    if (slot != nullptr) fn(*slot);
  }
}

}  // namespace tcpdemux::core
