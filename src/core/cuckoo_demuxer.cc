#include "core/cuckoo_demuxer.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "core/fault_inject.h"
#include "core/prefetch.h"
#include "core/resize_policy.h"
#include "core/simd.h"

namespace tcpdemux::core {
namespace {

constexpr std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

CuckooDemuxer::CuckooDemuxer(Options options) : options_(options) {
  if (options_.initial_capacity == 0) {
    throw std::invalid_argument("CuckooDemuxer: capacity must be >= 1");
  }
  const std::size_t slots = round_up_pow2(
      std::max(options_.initial_capacity, kMinBuckets * kBucketWidth));
  const std::size_t buckets = slots / kBucketWidth;
  bucket_mask_ = buckets - 1;
  meta_.assign(buckets, BucketMeta{});
  filter_counts_.assign(buckets, {});
  hashes_.assign(slots, 0);
  keys_.assign(slots, net::FlowKey{});
  pcbs_.resize(slots);
}

CuckooDemuxer::Probe CuckooDemuxer::find_slot(
    std::uint32_t h, const net::FlowKey& key) const noexcept {
  Probe r;
  const std::uint8_t tag = tag_of(h);
  const std::size_t b1 = bucket_of(h);
  std::uint32_t match = bucket_match(meta_[b1].tags.data(), tag);
  while (match != 0) {
    const auto s = static_cast<std::size_t>(std::countr_zero(match));
    ++r.examined;
    if (keys_[b1 * kBucketWidth + s] == key) {
      r.slot = b1 * kBucketWidth + s;
      return r;
    }
    match &= match - 1;
  }
  // Cuckoo++ filter: the alternate bucket can hold this key only if some
  // resident with this fingerprint nibble overflowed out of b1 — which
  // registered the bit. No bit, no second probe: the common negative
  // lookup ends after one bucket's metadata.
  if ((meta_[b1].filter & (1U << filter_index(tag))) == 0) return r;
  r.buckets = 2;
  const std::size_t b2 = alt_bucket(b1, tag);
  match = bucket_match(meta_[b2].tags.data(), tag);
  while (match != 0) {
    const auto s = static_cast<std::size_t>(std::countr_zero(match));
    ++r.examined;
    if (keys_[b2 * kBucketWidth + s] == key) {
      r.slot = b2 * kBucketWidth + s;
      return r;
    }
    match &= match - 1;
  }
  return r;
}

void CuckooDemuxer::filter_add(std::size_t bucket, std::uint8_t tag) noexcept {
  const std::uint32_t idx = filter_index(tag);
  ++filter_counts_[bucket][idx];
  meta_[bucket].filter |= static_cast<std::uint16_t>(1U << idx);
}

void CuckooDemuxer::filter_remove(std::size_t bucket,
                                  std::uint8_t tag) noexcept {
  const std::uint32_t idx = filter_index(tag);
  if (--filter_counts_[bucket][idx] == 0) {
    meta_[bucket].filter &= static_cast<std::uint16_t>(~(1U << idx));
  }
}

void CuckooDemuxer::set_slot(std::size_t slot, std::uint32_t h,
                             const net::FlowKey& key,
                             std::unique_ptr<Pcb> pcb) noexcept {
  meta_[slot / kBucketWidth].tags[slot % kBucketWidth] = tag_of(h);
  hashes_[slot] = h;
  keys_[slot] = key;
  pcbs_[slot] = std::move(pcb);
}

void CuckooDemuxer::move_slot(std::size_t from, std::size_t to) noexcept {
  const std::size_t from_bucket = from / kBucketWidth;
  const std::uint8_t tag = meta_[from_bucket].tags[from % kBucketWidth];
  const std::size_t primary = bucket_of(hashes_[from]);
  meta_[to / kBucketWidth].tags[to % kBucketWidth] = tag;
  meta_[from_bucket].tags[from % kBucketWidth] = 0;
  hashes_[to] = hashes_[from];
  keys_[to] = keys_[from];
  pcbs_[to] = std::move(pcbs_[from]);
  // A move is always between the entry's two candidate buckets, so it
  // either leaves home (register in the filter) or returns home
  // (deregister). The counted backing store keeps shared bits exact.
  if (from_bucket == primary) {
    filter_add(primary, tag);
  } else {
    filter_remove(primary, tag);
  }
}

bool CuckooDemuxer::place_entry(std::uint32_t h, const net::FlowKey& key,
                                std::unique_ptr<Pcb>& pcb,
                                std::size_t* effort) {
  const std::uint8_t tag = tag_of(h);
  const std::size_t b1 = bucket_of(h);
  const std::size_t b2 = alt_bucket(b1, tag);
  *effort = 0;
  for (std::size_t s = 0; s < kBucketWidth; ++s) {
    if (meta_[b1].tags[s] == 0) {
      set_slot(b1 * kBucketWidth + s, h, key, std::move(pcb));
      return true;
    }
  }
  for (std::size_t s = 0; s < kBucketWidth; ++s) {
    if (meta_[b2].tags[s] == 0) {
      set_slot(b2 * kBucketWidth + s, h, key, std::move(pcb));
      filter_add(b1, tag);
      return true;
    }
  }
  // Both candidate buckets full: breadth-first search of the kick graph
  // finds the *shortest* displacement path (random-walk cuckoo can wander
  // arbitrarily). node.via is the slot within the parent's bucket whose
  // resident can vacate into node.bucket; the alternate of a resident is
  // recomputed from its current bucket and tag alone (the xor involution),
  // never from its key.
  struct Node {
    std::size_t bucket;
    std::int16_t parent;
    std::uint8_t via;
  };
  std::array<Node, kMaxBfsNodes> nodes;
  std::size_t count = 0;
  nodes[count++] = Node{b1, -1, 0};
  nodes[count++] = Node{b2, -1, 0};
  for (std::size_t qi = 0; qi < count; ++qi) {
    const std::size_t from_bucket = nodes[qi].bucket;
    for (std::size_t s = 0; s < kBucketWidth; ++s) {
      const std::uint8_t rtag = meta_[from_bucket].tags[s];
      if (rtag == 0) continue;  // only full buckets are ever expanded
      const std::size_t other =
          (from_bucket ^ (net::mix32_avalanche(rtag) | 1U)) & bucket_mask_;
      std::size_t empty = kNpos;
      for (std::size_t e = 0; e < kBucketWidth; ++e) {
        if (meta_[other].tags[e] == 0) {
          empty = e;
          break;
        }
      }
      if (empty != kNpos) {
        *effort = count;
        // Unwind: vacate along the parent chain, then install the new
        // entry in the freed root slot (root is b1 or b2 by construction).
        move_slot(from_bucket * kBucketWidth + s,
                  other * kBucketWidth + empty);
        std::size_t free = from_bucket * kBucketWidth + s;
        std::size_t cur = qi;
        while (nodes[cur].parent >= 0) {
          const auto p = static_cast<std::size_t>(nodes[cur].parent);
          const std::size_t from =
              nodes[p].bucket * kBucketWidth + nodes[cur].via;
          move_slot(from, free);
          free = from;
          cur = p;
        }
        set_slot(free, h, key, std::move(pcb));
        if (free / kBucketWidth != b1) filter_add(b1, tag);
        return true;
      }
      if (count < kMaxBfsNodes) {
        bool seen = false;
        for (std::size_t n = 0; n < count && !seen; ++n) {
          seen = nodes[n].bucket == other;
        }
        if (!seen) {
          nodes[count++] = Node{other, static_cast<std::int16_t>(qi),
                                static_cast<std::uint8_t>(s)};
        }
      }
    }
  }
  *effort = count;
  return false;
}

Pcb* CuckooDemuxer::insert(const net::FlowKey& key) {
  std::uint32_t h = hash_of(key);
  if (find_slot(h, key).slot != kNpos) return nullptr;
  if (old_ != nullptr && find_slot_old(h, key).slot != kNpos) return nullptr;
  if (options_.max_pcbs != 0 && size_ >= options_.max_pcbs) {
    ++inserts_shed_;
    telemetry_->on_shed();
    return nullptr;
  }
  if (FaultInjector::instance().poll_alloc()) return nullptr;
  maybe_grow();
  // Ladder rung 2: growth is allocation-blocked and the live array has
  // hit its hard 15/16 watermark — shed rather than let kick searches
  // thrash a nearly full table.
  if (grow_blocked_ && (size_ + 1) * 16 > capacity() * 15) {
    ++inserts_shed_;
    telemetry_->on_shed();
    return nullptr;
  }
  auto pcb = std::make_unique<Pcb>(key, next_conn_id());
  Pcb* const raw = pcb.get();
  std::size_t effort = 0;
  bool placed = place_entry(h, key, pcb, &effort);
  for (int attempt = 0; attempt < 2 && !placed; ++attempt) {
    watermark_ = std::max<std::uint64_t>(watermark_, effort);
    // Kick search exhausted its budget. A keyed-seed rotation scatters
    // bucket-targeted floods; growth absorbs honest local saturation. A
    // table that stays unplaceable while at most half full is under a
    // crafted full-hash collision set (> 2*kBucketWidth keys sharing both
    // buckets at any geometry), which only shedding answers.
    if (options_.rehash_on_overload &&
        inserts_since_rehash_ >= rehash_cooldown_) {
      rehash_with_fresh_seed();
      h = hash_of(key);
      placed = place_entry(h, key, pcb, &effort);
      if (placed) break;
    }
    if (size_ * 2 < capacity()) break;
    grow();
    placed = place_entry(h, key, pcb, &effort);
  }
  if (!placed) {
    ++inserts_shed_;
    telemetry_->on_shed();
    return nullptr;
  }
  ++size_;
  telemetry_->on_insert();
  note_insert(effort);
  if (old_ != nullptr) [[unlikely]] migrate_batch(kMigrateBatch);
  return raw;
}

void CuckooDemuxer::maybe_grow() {
  // Grow at 7/8 occupancy: 4-way buckets keep kick paths short below
  // that, and the filter bits stay sparse.
  if ((size_ + 1) * 8 <= capacity() * 7) return;
  if (!options_.incremental) {
    grow();
    return;
  }
  if (old_ != nullptr) {
    // The *new* array itself hit the trigger while the old one still
    // drains: churn outpaced migration. Finish the drain (bounded by the
    // remaining debt), then start the next doubling below.
    finish_migration();
  }
  if (grow_blocked_ && grow_retry_in_ > 0) {
    --grow_retry_in_;
    return;
  }
  start_migration();
}

bool CuckooDemuxer::start_migration() {
  if (FaultInjector::instance().poll_alloc()) {
    defer_migration();
    return false;
  }
  const std::size_t buckets = bucket_count() * 2;
  const std::size_t slots = buckets * kBucketWidth;
  std::unique_ptr<OldTable> old;
  std::vector<BucketMeta> meta;
  std::vector<std::array<std::uint16_t, 16>> filter_counts;
  std::vector<std::uint32_t> hashes;
  std::vector<net::FlowKey> keys;
  std::vector<std::unique_ptr<Pcb>> pcbs;
  try {
    old = std::make_unique<OldTable>();
    meta.assign(buckets, BucketMeta{});
    filter_counts.assign(buckets, {});
    hashes.assign(slots, 0);
    keys.assign(slots, net::FlowKey{});
    pcbs.resize(slots);
  } catch (const std::bad_alloc&) {
    defer_migration();
    return false;
  }
  // Everything allocated: swing the live arrays behind the drain cursor.
  // No failure path from here on, so no intermediate state can leak.
  old->bucket_mask = bucket_mask_;
  old->residents = size_;
  old->meta = std::move(meta_);
  old->hashes = std::move(hashes_);
  old->keys = std::move(keys_);
  old->pcbs = std::move(pcbs_);
  old->filter_counts = std::move(filter_counts_);
  old_ = std::move(old);
  bucket_mask_ = buckets - 1;
  meta_ = std::move(meta);
  hashes_ = std::move(hashes);
  keys_ = std::move(keys);
  pcbs_ = std::move(pcbs);
  filter_counts_ = std::move(filter_counts);
  grow_blocked_ = false;
  grow_backoff_ = 0;
  grow_retry_in_ = 0;
  telemetry_->on_resize_start();
  return true;
}

void CuckooDemuxer::defer_migration() {
  grow_blocked_ = true;
  grow_backoff_ =
      grow_backoff_ == 0
          ? kGrowBackoffMin
          : std::min<std::uint64_t>(grow_backoff_ * 2, kGrowBackoffMax);
  grow_retry_in_ = grow_backoff_;
  telemetry_->on_resize_defer();
}

void CuckooDemuxer::migrate_batch(std::size_t budget) {
  if (old_ == nullptr) return;
  OldTable& old = *old_;
  std::size_t moved = 0;
  std::size_t scanned = 0;
  const std::size_t scan_budget = budget * kMigrateScanFactor;
  while (moved < budget && old.residents > 0) {
    // residents > 0 guarantees an occupied slot at or past the cursor:
    // nothing is ever placed or kicked into the old array, so the
    // drained prefix [0, cursor) never refills.
    const std::size_t slot = old.cursor;
    if (old.meta[slot / kBucketWidth].tags[slot % kBucketWidth] == 0) {
      ++old.cursor;
      if (++scanned >= scan_budget) break;
      continue;
    }
    const std::uint32_t h = old.hashes[slot];
    const net::FlowKey key = old.keys[slot];
    std::unique_ptr<Pcb> pcb = std::move(old.pcbs[slot]);
    std::size_t effort = 0;
    while (!place_entry(h, key, pcb, &effort)) {
      // Kick search exhausted mid-drain — possible only for degenerate
      // hash sets (the live array is at most half full here). The
      // stop-the-world rebuild ladder separates them; pointer-stable.
      grow();
    }
    clear_slot_old(slot);
    --old.residents;
    ++moved;
  }
  telemetry_->on_resize_step(moved, old.residents);
  if (old.residents == 0) {
    old_.reset();
    telemetry_->on_resize_complete();
  }
}

void CuckooDemuxer::finish_migration() {
  while (old_ != nullptr) migrate_batch(old_->residents + 1);
}

bool CuckooDemuxer::migration_step() {
  migrate_batch(kMigrateBatch);
  return old_ != nullptr;
}

CuckooDemuxer::Probe CuckooDemuxer::find_slot_old(
    std::uint32_t h, const net::FlowKey& key) const noexcept {
  const OldTable& old = *old_;
  Probe r;
  const std::uint8_t tag = tag_of(h);
  const std::size_t b1 = h & old.bucket_mask;
  std::uint32_t match = bucket_match(old.meta[b1].tags.data(), tag);
  while (match != 0) {
    const auto s = static_cast<std::size_t>(std::countr_zero(match));
    ++r.examined;
    if (old.keys[b1 * kBucketWidth + s] == key) {
      r.slot = b1 * kBucketWidth + s;
      return r;
    }
    match &= match - 1;
  }
  if ((old.meta[b1].filter & (1U << filter_index(tag))) == 0) return r;
  r.buckets = 2;
  const std::size_t b2 =
      (b1 ^ (net::mix32_avalanche(tag) | 1U)) & old.bucket_mask;
  match = bucket_match(old.meta[b2].tags.data(), tag);
  while (match != 0) {
    const auto s = static_cast<std::size_t>(std::countr_zero(match));
    ++r.examined;
    if (old.keys[b2 * kBucketWidth + s] == key) {
      r.slot = b2 * kBucketWidth + s;
      return r;
    }
    match &= match - 1;
  }
  return r;
}

void CuckooDemuxer::old_filter_remove(std::size_t bucket,
                                      std::uint8_t tag) noexcept {
  const std::uint32_t idx = filter_index(tag);
  if (--old_->filter_counts[bucket][idx] == 0) {
    old_->meta[bucket].filter &= static_cast<std::uint16_t>(~(1U << idx));
  }
}

void CuckooDemuxer::clear_slot_old(std::size_t slot) noexcept {
  OldTable& old = *old_;
  const std::size_t bucket = slot / kBucketWidth;
  const std::uint8_t tag = old.meta[bucket].tags[slot % kBucketWidth];
  const std::size_t primary = old.hashes[slot] & old.bucket_mask;
  if (bucket != primary) old_filter_remove(primary, tag);
  old.meta[bucket].tags[slot % kBucketWidth] = 0;
  old.pcbs[slot].reset();
}

void CuckooDemuxer::note_insert(std::size_t effort) {
  watermark_ = std::max<std::uint64_t>(watermark_, effort);
  ++inserts_since_rehash_;
}

void CuckooDemuxer::rehash_with_fresh_seed() {
  // The old array's stored hashes and filters were computed under the
  // outgoing seed; re-probing it after rotation would miss every
  // resident. Drain it first (rare: needs an overload mid-migration).
  finish_migration();
  options_.hasher.seed = net::next_seed(options_.hasher.seed);
  rebuild(bucket_count());
  watermark_ = 0;  // search effort restarts under the fresh seed
  ++overload_rehashes_;
  telemetry_->on_rehash();
  inserts_since_rehash_ = 0;
  // Hysteresis: even if every key collides under every seed, at most one
  // rehash per `limit` further inserts — bounded thrash.
  rehash_cooldown_ = watermark_limit();
}

void CuckooDemuxer::rebuild(std::size_t buckets) {
  struct Entry {
    net::FlowKey key;
    std::unique_ptr<Pcb> pcb;
  };
  std::vector<Entry> entries;
  entries.reserve(size_);
  const std::size_t old_capacity = capacity();
  for (std::size_t slot = 0; slot < old_capacity; ++slot) {
    if (meta_[slot / kBucketWidth].tags[slot % kBucketWidth] != 0) {
      entries.push_back(Entry{keys_[slot], std::move(pcbs_[slot])});
    }
  }
  while (true) {
    bucket_mask_ = buckets - 1;
    meta_.assign(buckets, BucketMeta{});
    filter_counts_.assign(buckets, {});
    hashes_.assign(buckets * kBucketWidth, 0);
    keys_.assign(buckets * kBucketWidth, net::FlowKey{});
    pcbs_.clear();
    pcbs_.resize(buckets * kBucketWidth);
    bool ok = true;
    for (auto& e : entries) {
      std::size_t effort = 0;
      if (!place_entry(hash_of(e.key), e.key, e.pcb, &effort)) {
        ok = false;
        break;
      }
    }
    if (ok) return;
    // Re-placement failed (possible only for near-degenerate hash sets at
    // this geometry). Reclaim what was placed, keep what was not, and
    // double: co-residents can share both candidate buckets at *every*
    // capacity only by sharing their full hash, and at most 2*kBucketWidth
    // of those ever co-reside — so doubling always separates the rest.
    std::vector<Entry> remaining;
    remaining.reserve(entries.size());
    const std::size_t cap = capacity();
    for (std::size_t slot = 0; slot < cap; ++slot) {
      if (meta_[slot / kBucketWidth].tags[slot % kBucketWidth] != 0) {
        remaining.push_back(Entry{keys_[slot], std::move(pcbs_[slot])});
      }
    }
    for (auto& e : entries) {
      if (e.pcb != nullptr) remaining.push_back(std::move(e));
    }
    entries = std::move(remaining);
    buckets *= 2;
  }
}

void CuckooDemuxer::grow() { rebuild(bucket_count() * 2); }

bool CuckooDemuxer::erase(const net::FlowKey& key) {
  const std::uint32_t h = hash_of(key);
  const Probe p = find_slot(h, key);
  if (p.slot != kNpos) {
    const std::size_t bucket = p.slot / kBucketWidth;
    const std::uint8_t tag = meta_[bucket].tags[p.slot % kBucketWidth];
    const std::size_t primary = bucket_of(hashes_[p.slot]);
    if (bucket != primary) filter_remove(primary, tag);
    meta_[bucket].tags[p.slot % kBucketWidth] = 0;
    pcbs_[p.slot].reset();
  } else {
    if (old_ == nullptr) return false;
    const Probe q = find_slot_old(h, key);
    if (q.slot == kNpos) return false;
    clear_slot_old(q.slot);
    if (--old_->residents == 0) {
      old_.reset();
      telemetry_->on_resize_complete();
    }
  }
  --size_;
  telemetry_->on_erase();
  if (old_ != nullptr) [[unlikely]] migrate_batch(kMigrateBatch);
  return true;
}

LookupResult CuckooDemuxer::lookup(const net::FlowKey& key,
                                   SegmentKind /*kind*/) {
  const std::uint32_t h = hash_of(key);
  const Probe p = find_slot(h, key);
  buckets_probed_ += p.buckets;
  LookupResult r;
  r.examined = p.examined;
  if (p.slot != kNpos) {
    r.pcb = pcbs_[p.slot].get();
  } else if (old_ != nullptr) [[unlikely]] {
    // Mid-migration a resident may still sit in the draining array; both
    // probes' examined counts are charged (the paper's metric counts
    // every key compared, whichever array holds it).
    const Probe q = find_slot_old(h, key);
    buckets_probed_ += q.buckets;
    r.examined += q.examined;
    if (q.slot != kNpos) r.pcb = old_->pcbs[q.slot].get();
  }
  note_lookup(r);
  if (old_ != nullptr) [[unlikely]] migrate_batch(kMigrateLookupBatch);
  return r;
}

void CuckooDemuxer::lookup_batch(std::span<const net::FlowKey> keys,
                                 std::span<LookupResult> results,
                                 SegmentKind kind) {
  if (old_ != nullptr) [[unlikely]] {
    // Mid-migration the pipelined prefetch would have to target both
    // arrays; take the scalar path, which also paces the drain (one
    // migrated entry per lookup). Results and stats stay bit-identical
    // to per-packet lookup() by construction.
    for (std::size_t i = 0; i < keys.size(); ++i) {
      results[i] = lookup(keys[i], kind);
    }
    return;
  }
  // Same pipeline as the flat table: hash the chunk, issue prefetches for
  // every primary bucket's metadata and key line, then probe. The
  // alternate bucket is rarely touched (that is the filter's job), so
  // prefetching it would waste bandwidth.
  constexpr std::size_t kChunk = 16;
  std::array<std::uint32_t, kChunk> h;
  for (std::size_t base = 0; base < keys.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, keys.size() - base);
    for (std::size_t i = 0; i < n; ++i) {
      h[i] = hash_of(keys[base + i]);
      prefetch_read(&meta_[bucket_of(h[i])]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      prefetch_read(&keys_[bucket_of(h[i]) * kBucketWidth]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const Probe p = find_slot(h[i], keys[base + i]);
      buckets_probed_ += p.buckets;
      LookupResult r;
      r.examined = p.examined;
      if (p.slot != kNpos) r.pcb = pcbs_[p.slot].get();
      note_lookup(r);
      results[base + i] = r;
    }
  }
}

LookupResult CuckooDemuxer::lookup_wildcard(const net::FlowKey& key) {
  // Exact probe first (cheap), then BSD best-match over every resident —
  // wildcard-bearing keys hash elsewhere, so nothing short of a sweep can
  // find them. Same contract as the flat table. Both arrays are probed
  // and swept while a migration drains.
  const std::uint32_t h = hash_of(key);
  const Probe p = find_slot(h, key);
  LookupResult best;
  best.examined = p.examined;
  if (p.slot != kNpos) {
    best.pcb = pcbs_[p.slot].get();
    return best;
  }
  if (old_ != nullptr) {
    const Probe q = find_slot_old(h, key);
    best.examined += q.examined;
    if (q.slot != kNpos) {
      best.pcb = old_->pcbs[q.slot].get();
      return best;
    }
  }
  int best_score = -1;
  const auto sweep = [&](const std::vector<BucketMeta>& meta,
                         const std::vector<net::FlowKey>& table_keys,
                         const std::vector<std::unique_ptr<Pcb>>& table_pcbs,
                         std::size_t cap) {
    for (std::size_t i = 0; i < cap; ++i) {
      if (meta[i / kBucketWidth].tags[i % kBucketWidth] == 0) continue;
      ++best.examined;
      const int score = table_keys[i].match_score(key);
      if (score < 0) continue;
      if (score == 0) {
        best.pcb = table_pcbs[i].get();
        return true;
      }
      if (best_score < 0 || score < best_score) {
        best_score = score;
        best.pcb = table_pcbs[i].get();
      }
    }
    return false;
  };
  if (sweep(meta_, keys_, pcbs_, capacity())) return best;
  if (old_ != nullptr) {
    sweep(old_->meta, old_->keys, old_->pcbs, old_->capacity());
  }
  return best;
}

void CuckooDemuxer::for_each_pcb(
    const std::function<void(const Pcb&)>& fn) const {
  const std::size_t cap = capacity();
  for (std::size_t i = 0; i < cap; ++i) {
    if (meta_[i / kBucketWidth].tags[i % kBucketWidth] != 0) fn(*pcbs_[i]);
  }
  if (old_ == nullptr) return;
  const std::size_t old_cap = old_->capacity();
  for (std::size_t i = 0; i < old_cap; ++i) {
    if (old_->meta[i / kBucketWidth].tags[i % kBucketWidth] != 0) {
      fn(*old_->pcbs[i]);
    }
  }
}

std::vector<std::size_t> CuckooDemuxer::occupancy() const {
  const std::size_t old_buckets =
      old_ == nullptr ? 0 : old_->bucket_mask + 1;
  std::vector<std::size_t> buckets(bucket_count() + old_buckets, 0);
  for (std::size_t b = 0; b < bucket_count(); ++b) {
    for (std::size_t s = 0; s < kBucketWidth; ++s) {
      if (meta_[b].tags[s] != 0) ++buckets[b];
    }
  }
  for (std::size_t b = 0; b < old_buckets; ++b) {
    for (std::size_t s = 0; s < kBucketWidth; ++s) {
      if (old_->meta[b].tags[s] != 0) ++buckets[bucket_count() + b];
    }
  }
  return buckets;
}

ResilienceStats CuckooDemuxer::resilience() const {
  return {overload_rehashes_, inserts_shed_, watermark_, watermark_limit()};
}

std::size_t CuckooDemuxer::memory_bytes() const {
  constexpr std::size_t kPerBucket =
      sizeof(BucketMeta) + sizeof(std::array<std::uint16_t, 16>);
  constexpr std::size_t kPerSlot = sizeof(std::uint32_t) +
                                   sizeof(net::FlowKey) +
                                   sizeof(std::unique_ptr<Pcb>);
  std::size_t bytes = size_ * sizeof(Pcb) + sizeof(*this) +
                      bucket_count() * kPerBucket + capacity() * kPerSlot;
  if (old_ != nullptr) {
    bytes += sizeof(OldTable) + (old_->bucket_mask + 1) * kPerBucket +
             old_->capacity() * kPerSlot;
  }
  return bytes;
}

std::string CuckooDemuxer::name() const {
  std::string n = "cuckoo(cap=";
  n += std::to_string(capacity());
  n += ',';
  n += net::hash_spec_name(options_.hasher);
  if (options_.rehash_on_overload) n += ",rehash";
  if (options_.max_pcbs != 0) n += ",max=" + std::to_string(options_.max_pcbs);
  if (options_.incremental) n += ",incremental";
  n += ')';
  return n;
}

}  // namespace tcpdemux::core
