#include "core/hashed_mtf.h"

#include "core/fault_inject.h"

#include <stdexcept>

namespace tcpdemux::core {

HashedMtfDemuxer::HashedMtfDemuxer(Options options) : options_(options) {
  if (options_.chains == 0) {
    throw std::invalid_argument("HashedMtfDemuxer: chain count must be >= 1");
  }
  buckets_.resize(options_.chains);
}

Pcb* HashedMtfDemuxer::insert(const net::FlowKey& key) {
  PcbList& list = buckets_[chain_of(key)];
  if (list.find_scan(key).pcb != nullptr) return nullptr;
  if (FaultInjector::instance().poll_alloc()) return nullptr;
  Pcb* pcb = list.emplace_front(key, next_conn_id());
  ++size_;
  telemetry_->on_insert();
  return pcb;
}

bool HashedMtfDemuxer::erase(const net::FlowKey& key) {
  PcbList& list = buckets_[chain_of(key)];
  const auto scan = list.find_scan(key);
  if (scan.pcb == nullptr) return false;
  list.erase(scan.pcb);
  --size_;
  telemetry_->on_erase();
  return true;
}

LookupResult HashedMtfDemuxer::lookup(const net::FlowKey& key,
                                      SegmentKind /*kind*/) {
  PcbList& list = buckets_[chain_of(key)];
  LookupResult r;
  const auto scan = list.find_scan(key);
  r.examined = scan.examined;
  r.pcb = scan.pcb;
  r.cache_hit = (scan.pcb != nullptr && scan.examined == 1);
  if (scan.pcb != nullptr) list.move_to_front(scan.pcb);
  note_lookup(r);
  return r;
}

LookupResult HashedMtfDemuxer::lookup_wildcard(const net::FlowKey& key) {
  LookupResult best;
  int best_score = -1;
  for (PcbList& list : buckets_) {
    const auto scan = list.find_best_match(key);
    best.examined += scan.examined;
    if (scan.pcb == nullptr) continue;
    const int score = scan.pcb->key.match_score(key);
    if (score == 0) {
      best.pcb = scan.pcb;
      return best;
    }
    if (best_score < 0 || score < best_score) {
      best_score = score;
      best.pcb = scan.pcb;
    }
  }
  return best;
}

void HashedMtfDemuxer::for_each_pcb(
    const std::function<void(const Pcb&)>& fn) const {
  for (const PcbList& list : buckets_) {
    list.for_each(fn);
  }
}

std::string HashedMtfDemuxer::name() const {
  std::string n = "hashed_mtf(h=";
  n += std::to_string(options_.chains);
  n += ',';
  n += net::hasher_name(options_.hasher);
  n += ')';
  return n;
}

}  // namespace tcpdemux::core
