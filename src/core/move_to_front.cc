#include "core/move_to_front.h"

#include "core/fault_inject.h"

namespace tcpdemux::core {

Pcb* MoveToFrontDemuxer::insert(const net::FlowKey& key) {
  if (list_.find_scan(key).pcb != nullptr) return nullptr;
  if (FaultInjector::instance().poll_alloc()) return nullptr;
  telemetry_->on_insert();
  return list_.emplace_front(key, next_conn_id());
}

bool MoveToFrontDemuxer::erase(const net::FlowKey& key) {
  const auto scan = list_.find_scan(key);
  if (scan.pcb == nullptr) return false;
  list_.erase(scan.pcb);
  telemetry_->on_erase();
  return true;
}

LookupResult MoveToFrontDemuxer::lookup(const net::FlowKey& key,
                                        SegmentKind /*kind*/) {
  LookupResult r;
  const auto scan = list_.find_scan(key);
  r.examined = scan.examined;
  r.pcb = scan.pcb;
  // A hit on the head node is the MTF analogue of a cache hit.
  r.cache_hit = (scan.pcb != nullptr && scan.examined == 1);
  if (scan.pcb != nullptr) list_.move_to_front(scan.pcb);
  note_lookup(r);
  return r;
}

LookupResult MoveToFrontDemuxer::lookup_wildcard(const net::FlowKey& key) {
  const auto scan = list_.find_best_match(key);
  return LookupResult{scan.pcb, scan.examined, false};
}

void MoveToFrontDemuxer::for_each_pcb(
    const std::function<void(const Pcb&)>& fn) const {
  list_.for_each(fn);
}

}  // namespace tcpdemux::core
