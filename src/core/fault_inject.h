// FaultInjector: a process-wide allocation-failure injection point for the
// robustness harness.
//
// Demuxer insert paths (and the SYN cache) call poll_alloc() after their
// duplicate check and *before* any allocation or mutation; a `true` return
// means "pretend the allocator failed" and the caller must back out with no
// state change — exactly the contract a real std::bad_alloc at that point
// would impose. Tests arm the injector, hammer the structure, and run the
// StructuralValidator after every refusal to prove no partial state leaks.
//
// Disarmed cost is a single relaxed atomic load — cheap enough to leave the
// hook compiled into release builds (checkpoints are only counted while
// armed). All state is atomic so TSan-instrumented concurrency tests can
// arm it too.
#ifndef TCPDEMUX_CORE_FAULT_INJECT_H_
#define TCPDEMUX_CORE_FAULT_INJECT_H_

#include <atomic>
#include <cstdint>

namespace tcpdemux::core {

class FaultInjector {
 public:
  /// The process-wide injector instance.
  [[nodiscard]] static FaultInjector& instance() noexcept;

  /// The hook: returns true if this allocation attempt must fail.
  /// Checkpoints are counted only while armed, so test runs are
  /// deterministic regardless of how much code ran while disarmed.
  [[nodiscard]] bool poll_alloc() noexcept {
    if (mode_.load(std::memory_order_relaxed) == Mode::kOff) return false;
    return poll_armed();
  }

  /// Fails every `n`-th checkpoint (n >= 1; n == 1 fails every attempt).
  void arm_every(std::uint64_t n) noexcept;

  /// Fails exactly one checkpoint, the `n`-th from now (n >= 1), then
  /// self-disarms.
  void arm_after(std::uint64_t n) noexcept;

  /// Stops injecting. Counters are left readable.
  void disarm() noexcept;

  /// Disarms and zeroes both counters.
  void reset() noexcept;

  /// Checkpoints polled while armed since the last reset().
  [[nodiscard]] std::uint64_t checkpoints() const noexcept {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  /// Failures injected since the last reset().
  [[nodiscard]] std::uint64_t injected() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  enum class Mode : std::uint8_t { kOff, kEvery, kOnce };

  FaultInjector() noexcept = default;
  [[nodiscard]] bool poll_armed() noexcept;

  std::atomic<Mode> mode_{Mode::kOff};
  std::atomic<std::uint64_t> period_{0};
  std::atomic<std::uint64_t> countdown_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace tcpdemux::core

#endif  // TCPDEMUX_CORE_FAULT_INJECT_H_
