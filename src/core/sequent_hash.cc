#include "core/sequent_hash.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "core/fault_inject.h"
#include "core/prefetch.h"

namespace tcpdemux::core {

SequentDemuxer::SequentDemuxer(Options options) : options_(options) {
  if (options_.chains == 0) {
    throw std::invalid_argument("SequentDemuxer: chain count must be >= 1");
  }
  buckets_.resize(options_.chains);
}

Pcb* SequentDemuxer::insert(const net::FlowKey& key) {
  Bucket& b = buckets_[chain_of(key)];
  if (b.list.find_scan(key).pcb != nullptr) return nullptr;
  if (options_.max_pcbs != 0 && size_ >= options_.max_pcbs) {
    ++inserts_shed_;
    telemetry_->on_shed();
    return nullptr;
  }
  if (FaultInjector::instance().poll_alloc()) return nullptr;
  Pcb* pcb = b.list.emplace_front(key, next_conn_id());
  ++size_;
  telemetry_->on_insert();
  note_insert(b);
  return pcb;
}

void SequentDemuxer::note_insert(const Bucket& b) {
  watermark_ = std::max<std::uint64_t>(watermark_, b.list.size());
  ++inserts_since_rehash_;
  if (options_.rehash_on_overload && watermark_ > watermark_limit() &&
      inserts_since_rehash_ >= rehash_cooldown_) {
    rehash_with_fresh_seed();
  }
}

void SequentDemuxer::rehash_with_fresh_seed() {
  options_.hasher.seed = net::next_seed(options_.hasher.seed);
  std::vector<Bucket> old;
  old.swap(buckets_);
  buckets_.resize(options_.chains);
  for (Bucket& ob : old) {
    while (Pcb* pcb = ob.list.extract_front()) {
      buckets_[chain_of(pcb->key)].list.adopt_front(pcb);
    }
  }
  watermark_ = 0;
  for (const Bucket& nb : buckets_) {
    watermark_ = std::max<std::uint64_t>(watermark_, nb.list.size());
  }
  ++overload_rehashes_;
  telemetry_->on_rehash();
  inserts_since_rehash_ = 0;
  // Hysteresis: even if every key collides under every seed (full-32-bit
  // collisions survive the seeded post-mix of non-SipHash kinds), at most
  // one rehash per `limit` further inserts — bounded thrash, and benign
  // workloads that momentarily crossed the line get a fresh start.
  rehash_cooldown_ = watermark_limit();
}

ResilienceStats SequentDemuxer::resilience() const {
  return {overload_rehashes_, inserts_shed_, watermark_, watermark_limit()};
}

bool SequentDemuxer::erase(const net::FlowKey& key) {
  Bucket& b = buckets_[chain_of(key)];
  const auto scan = b.list.find_scan(key);
  if (scan.pcb == nullptr) return false;
  if (b.cache == scan.pcb) b.cache = nullptr;
  b.list.erase(scan.pcb);
  --size_;
  telemetry_->on_erase();
  return true;
}

LookupResult SequentDemuxer::lookup_in_bucket(Bucket& b,
                                              const net::FlowKey& key) {
  LookupResult r;
  if (options_.per_chain_cache && b.cache != nullptr) {
    ++r.examined;
    if (b.cache->key == key) {
      r.pcb = b.cache;
      r.cache_hit = true;
      return r;
    }
  }
  const auto scan = b.list.find_scan(key);
  r.examined += scan.examined;
  r.pcb = scan.pcb;
  if (options_.per_chain_cache && scan.pcb != nullptr) b.cache = scan.pcb;
  return r;
}

LookupResult SequentDemuxer::lookup(const net::FlowKey& key,
                                    SegmentKind /*kind*/) {
  const LookupResult r = lookup_in_bucket(buckets_[chain_of(key)], key);
  note_lookup(r);
  return r;
}

void SequentDemuxer::lookup_batch(std::span<const net::FlowKey> keys,
                                  std::span<LookupResult> results,
                                  SegmentKind /*kind*/) {
  // Three-stage pipeline per chunk: (1) hash every key and prefetch its
  // bucket header (cache pointer + chain head); (2) with the headers
  // landing, prefetch the first PCB each probe will touch — the cached
  // entry when the cache is armed, else the chain head; (3) probe. The
  // dependent loads of a whole burst overlap instead of serializing.
  constexpr std::size_t kChunk = 16;
  std::array<Bucket*, kChunk> bucket;
  for (std::size_t base = 0; base < keys.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, keys.size() - base);
    for (std::size_t i = 0; i < n; ++i) {
      bucket[i] = &buckets_[chain_of(keys[base + i])];
      prefetch_read(bucket[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const Bucket& b = *bucket[i];
      const Pcb* const first =
          (options_.per_chain_cache && b.cache != nullptr) ? b.cache
                                                           : b.list.head();
      if (first != nullptr) prefetch_read(first);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const LookupResult r = lookup_in_bucket(*bucket[i], keys[base + i]);
      note_lookup(r);
      results[base + i] = r;
    }
  }
}

LookupResult SequentDemuxer::lookup_wildcard(const net::FlowKey& key) {
  // A wildcard-bearing PCB may live on a different chain than the packet's
  // hash (its foreign half is zero), so all chains must be consulted; exact
  // matches still short-circuit within the packet's own chain first.
  LookupResult best;
  int best_score = -1;
  const std::uint32_t home = chain_of(key);
  for (std::uint32_t i = 0; i < options_.chains; ++i) {
    const std::uint32_t c = (home + i) % options_.chains;
    const auto scan = buckets_[c].list.find_best_match(key);
    best.examined += scan.examined;
    if (scan.pcb == nullptr) continue;
    const int score = scan.pcb->key.match_score(key);
    if (score == 0) {
      best.pcb = scan.pcb;
      return best;
    }
    if (best_score < 0 || score < best_score) {
      best_score = score;
      best.pcb = scan.pcb;
    }
  }
  return best;
}

void SequentDemuxer::for_each_pcb(
    const std::function<void(const Pcb&)>& fn) const {
  for (const Bucket& b : buckets_) {
    b.list.for_each(fn);
  }
}

std::string SequentDemuxer::name() const {
  std::string n = "sequent(h=";
  n += std::to_string(options_.chains);
  n += ',';
  n += net::hash_spec_name(options_.hasher);
  if (!options_.per_chain_cache) n += ",nocache";
  if (options_.rehash_on_overload) n += ",rehash";
  if (options_.max_pcbs != 0) n += ",max=" + std::to_string(options_.max_pcbs);
  n += ')';
  return n;
}

std::vector<std::size_t> SequentDemuxer::chain_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(buckets_.size());
  for (const Bucket& b : buckets_) sizes.push_back(b.list.size());
  return sizes;
}

}  // namespace tcpdemux::core
