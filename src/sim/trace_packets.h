// Synthesizes full wire-format packets from an abstract workload trace.
//
// A Trace records *when* and *on which connection* packets move; this
// module turns that into the actual bytes on the wire — consistent TCP
// sequence/acknowledgement numbers per connection, correct checksums —
// suitable for pcap export (net/pcap.h) or for replay through a
// SocketTable. Transaction queries carry `query_bytes` of payload from the
// client; kTransmit events become the server's segments (the query's ack,
// then the response of `response_bytes`); kArrivalAck events become the
// client's pure acknowledgements.
#ifndef TCPDEMUX_SIM_TRACE_PACKETS_H_
#define TCPDEMUX_SIM_TRACE_PACKETS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "net/flow_key.h"
#include "sim/trace.h"

namespace tcpdemux::sim {

struct TimedPacket {
  double time = 0.0;
  bool to_server = true;  ///< direction: client->server or server->client
  std::vector<std::uint8_t> wire;
};

struct TracePacketOptions {
  std::uint32_t query_bytes = 120;    ///< TPC/A-sized transaction entry
  std::uint32_t response_bytes = 320;
  bool include_server_segments = true;  ///< emit kTransmit packets too
};

/// Expands `trace` into wire packets using one flow key per connection
/// (`keys[conn]`, server-perspective as produced by make_client_keys).
/// Sequence numbers start at conn*1e6 (client) and conn*1e6+5e5 (server)
/// and advance with the payload so the streams are self-consistent.
[[nodiscard]] std::vector<TimedPacket> synthesize_packets(
    const Trace& trace, std::span<const net::FlowKey> keys,
    const TracePacketOptions& options = {});

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_TRACE_PACKETS_H_
