// Packet traces: the server-side event stream a workload generates and a
// demuxer replays.
//
// A trace separates "what traffic arrives" from "how it is demultiplexed",
// so every algorithm can be measured against the *identical* arrival
// sequence. Three event kinds matter to the algorithms under study:
//   kArrivalData  — a segment with payload arrives (transaction query);
//                   the demuxer is invoked with SegmentKind::kData.
//   kArrivalAck   — a pure acknowledgement arrives; SegmentKind::kAck.
//   kTransmit     — the host sends a segment on the connection; no lookup,
//                   but the send/receive cache observes it (its
//                   "last sent" slot).
#ifndef TCPDEMUX_SIM_TRACE_H_
#define TCPDEMUX_SIM_TRACE_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace tcpdemux::sim {

enum class TraceEventKind : std::uint8_t {
  kArrivalData,
  kArrivalAck,
  kTransmit,
  /// Connection established (PCB inserted). Connections whose first trace
  /// event is NOT kOpen are considered pre-established and are inserted
  /// before replay begins.
  kOpen,
  /// Connection torn down (PCB erased).
  kClose,
};

[[nodiscard]] std::string_view to_string(TraceEventKind kind) noexcept;

struct TraceEvent {
  double time = 0.0;
  std::uint32_t conn = 0;  ///< dense connection index, [0, connections)
  TraceEventKind kind = TraceEventKind::kArrivalData;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct Trace {
  std::uint32_t connections = 0;
  std::vector<TraceEvent> events;

  /// Stable-sorts events by time (generator output interleaves users).
  void sort_by_time();

  /// True if events are time-ordered and every conn < connections.
  [[nodiscard]] bool valid() const noexcept;

  [[nodiscard]] std::size_t arrivals() const noexcept;

  /// Appends `other`'s events, remapping its connection indices above ours,
  /// then re-sorts. Used to build mixed workloads.
  void merge(const Trace& other);
};

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_TRACE_H_
