// TPC/A client-population workload generator (paper §2).
//
// N users each loop: enter a transaction, wait for the response (response
// time R as observed at the client), think (truncated negative-exponential,
// mean >= 10 s, cap >= 10x mean), repeat. Each transaction is 4 packets of
// which the server receives two — the query and the transport-level
// acknowledgement of the response — and transmits two (the query's ack and
// the response), which the send/receive cache's "last sent" slot observes.
//
// Server-side event timeline per transaction entered at client time t:
//   t + D/2          query arrives             (kArrivalData)
//   t + D/2          query's ack transmitted   (kTransmit)
//   t + D/2 + (R-D)  response transmitted      (kTransmit)
//   t + D/2 + R      response's ack arrives    (kArrivalAck)
// so the ack trails the query's arrival by exactly R, matching the
// analysis, and the client sees its response R after entering.
//
// Two knobs reproduce the paper's modelling assumptions (§3) so the
// abl_assumptions bench can measure their effect:
//   * open_loop:      users may enter a new transaction while the previous
//                     response is outstanding (the paper's analysis
//                     assumes this; real TPC/A users are closed-loop).
//   * truncate_think: draw think times from the truncated distribution
//                     (real TPC/A) or the pure exponential (the analysis).
#ifndef TCPDEMUX_SIM_TPCA_WORKLOAD_H_
#define TCPDEMUX_SIM_TPCA_WORKLOAD_H_

#include <cstdint>

#include "sim/trace.h"

namespace tcpdemux::sim {

struct TpcaWorkloadParams {
  std::uint32_t users = 2000;
  double think_mean = 10.0;      ///< seconds; TPC/A minimum
  double think_cap_factor = 10.0;  ///< cap = factor * mean; TPC/A minimum
  double response_time = 0.2;    ///< R, client-observed, seconds
  double rtt = 0.001;            ///< D, network round-trip, seconds
  double duration = 600.0;       ///< simulated seconds of arrivals
  double warmup = 50.0;          ///< discard events before this time
  bool open_loop = true;         ///< paper's analysis assumption
  bool truncate_think = true;    ///< real TPC/A rule
  /// Mean transactions per connection session. 0 means connections live
  /// forever (the paper's steady state). Otherwise each transaction ends
  /// its session with probability 1/mean (geometric session length); the
  /// user disconnects after the ack (kClose) and reconnects on a fresh
  /// connection — new ephemeral port, new conn index — just before the
  /// next query (kOpen). Pre-pooling OLTP clients really did this.
  double session_txns_mean = 0.0;
  std::uint64_t seed = 42;
};

/// Generates the server-side trace for the configured population.
/// Events with time < warmup are discarded (the first think times start at
/// uniformly random phases, so the system reaches steady state quickly);
/// remaining event times are shifted down by `warmup`.
[[nodiscard]] Trace generate_tpca_trace(const TpcaWorkloadParams& params);

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_TPCA_WORKLOAD_H_
