#include "sim/ethernet_switch.h"

namespace tcpdemux::sim {

std::size_t EthernetSwitch::add_port(PortFn egress) {
  ports_.push_back(std::move(egress));
  return ports_.size() - 1;
}

void EthernetSwitch::learn(const net::MacAddr& mac, std::size_t port,
                           double now) {
  if (mac.is_multicast()) return;  // never learn group addresses
  const auto key = mac.octets();
  if (!mac_table_.contains(key) &&
      mac_table_.size() >= options_.max_macs) {
    // Evict the stalest entry.
    auto victim = mac_table_.begin();
    for (auto it = mac_table_.begin(); it != mac_table_.end(); ++it) {
      if (it->second.learned < victim->second.learned) victim = it;
    }
    mac_table_.erase(victim);
  }
  mac_table_[key] = MacEntry{port, now};
}

void EthernetSwitch::receive(std::size_t ingress_port,
                             std::span<const std::uint8_t> frame,
                             double now) {
  const auto header = net::EthernetHeader::parse(frame);
  if (!header || ingress_port >= ports_.size()) {
    ++stats_.dropped;
    return;
  }
  learn(header->src, ingress_port, now);

  std::vector<std::uint8_t> copy(frame.begin(), frame.end());
  if (!header->dst.is_multicast() && !header->dst.is_broadcast()) {
    const auto it = mac_table_.find(header->dst.octets());
    if (it != mac_table_.end() &&
        now - it->second.learned <= options_.mac_ageing) {
      if (it->second.port == ingress_port) {
        ++stats_.dropped;  // destination is back where it came from
        return;
      }
      ++stats_.forwarded;
      ports_[it->second.port](std::move(copy));
      return;
    }
  }
  // Unknown unicast, broadcast, or multicast: flood.
  ++stats_.flooded;
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    if (p == ingress_port) continue;
    ports_[p](std::vector<std::uint8_t>(frame.begin(), frame.end()));
  }
}

std::size_t EthernetSwitch::expire(double now) {
  std::size_t dropped = 0;
  for (auto it = mac_table_.begin(); it != mac_table_.end();) {
    if (now - it->second.learned > options_.mac_ageing) {
      it = mac_table_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::size_t EthernetSwitch::port_of(const net::MacAddr& mac) const {
  const auto it = mac_table_.find(mac.octets());
  return it == mac_table_.end() ? npos : it->second.port;
}

}  // namespace tcpdemux::sim
