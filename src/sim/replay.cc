#include "sim/replay.h"

#include <chrono>
#include <stdexcept>

namespace tcpdemux::sim {

ReplayResult replay_trace(const Trace& trace,
                          std::span<const net::FlowKey> keys,
                          core::Demuxer& demuxer,
                          const ReplayOptions& options) {
  if (keys.size() < trace.connections) {
    throw std::invalid_argument("replay: not enough flow keys for trace");
  }
  if (demuxer.size() != 0) {
    throw std::invalid_argument("replay: demuxer must start empty");
  }

  ReplayResult result;
  result.algorithm = demuxer.name();

  // Interval telemetry needs the examined-PCB histograms; they are opt-in
  // precisely so runs that do not ask pay nothing beyond the counters.
  const bool want_series = options.telemetry_interval != 0;
  if (want_series) {
    demuxer.enable_telemetry_histograms(true);
    result.series.interval = options.telemetry_interval;
  }
  report::Telemetry prev = demuxer.telemetry();
  report::LatencySampler sampler =
      options.latency_sample_every != 0
          ? report::LatencySampler(options.latency_sample_every)
          : report::LatencySampler();

  // A connection whose first event is kOpen joins the table mid-replay;
  // one with any other first event is pre-established (the paper's steady
  // state); one with no events at all (e.g. a churned session that lived
  // and died before the measurement window) never existed here and must
  // not inflate the table.
  enum class Start : std::uint8_t { kAbsent, kPreEstablished, kOpensLater };
  std::vector<Start> start(trace.connections, Start::kAbsent);
  for (const TraceEvent& e : trace.events) {
    if (start[e.conn] == Start::kAbsent) {
      start[e.conn] = e.kind == TraceEventKind::kOpen
                          ? Start::kOpensLater
                          : Start::kPreEstablished;
    }
  }

  std::vector<core::Pcb*> pcbs(trace.connections, nullptr);
  for (std::uint32_t c = 0; c < trace.connections; ++c) {
    if (start[c] != Start::kPreEstablished) continue;
    pcbs[c] = demuxer.insert(keys[c]);
    if (pcbs[c] == nullptr) {
      throw std::invalid_argument("replay: duplicate or rejected flow key");
    }
  }

  result.overall.reserve(trace.arrivals());
  for (const TraceEvent& event : trace.events) {
    switch (event.kind) {
      case TraceEventKind::kOpen:
        pcbs[event.conn] = demuxer.insert(keys[event.conn]);
        if (pcbs[event.conn] == nullptr) {
          throw std::invalid_argument("replay: open of duplicate key");
        }
        ++result.opens;
        break;
      case TraceEventKind::kClose:
        if (demuxer.erase(keys[event.conn])) {
          pcbs[event.conn] = nullptr;
          ++result.closes;
        }
        break;
      case TraceEventKind::kTransmit:
        if (pcbs[event.conn] != nullptr) {
          demuxer.note_sent(pcbs[event.conn]);
        }
        break;
      case TraceEventKind::kArrivalData:
      case TraceEventKind::kArrivalAck: {
        const auto kind = event.kind == TraceEventKind::kArrivalData
                              ? core::SegmentKind::kData
                              : core::SegmentKind::kAck;
        core::LookupResult r;
        if (sampler.enabled() && sampler.should_sample()) {
          const auto t0 = std::chrono::steady_clock::now();
          r = demuxer.lookup(keys[event.conn], kind);
          const auto t1 = std::chrono::steady_clock::now();
          sampler.record_ns(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
        } else {
          r = demuxer.lookup(keys[event.conn], kind);
        }
        ++result.lookups;
        if (r.cache_hit) ++result.cache_hits;
        if (r.pcb == nullptr) ++result.misses;
        result.overall.add(r.examined);
        if (kind == core::SegmentKind::kData) {
          result.data.add(r.examined);
        } else {
          result.ack.add(r.examined);
        }
        if (want_series &&
            result.lookups % options.telemetry_interval == 0) {
          const auto occ = demuxer.occupancy();
          result.series.samples.push_back(report::interval_sample(
              result.lookups, demuxer.telemetry(), prev, occ));
          prev = demuxer.telemetry();
        }
        break;
      }
    }
  }
  if (want_series &&
      result.lookups % options.telemetry_interval != 0) {
    // Final partial interval: the tail of the run still shows up in the
    // series instead of silently vanishing.
    const auto occ = demuxer.occupancy();
    result.series.samples.push_back(report::interval_sample(
        result.lookups, demuxer.telemetry(), prev, occ));
  }
  if (sampler.enabled()) result.latency_ns = sampler.histogram();
  return result;
}

ReplayResult replay_trace(const Trace& trace, core::Demuxer& demuxer,
                          const ReplayOptions& options) {
  AddressSpaceParams params;
  params.clients = trace.connections;
  const auto keys = make_client_keys(params);
  return replay_trace(trace, keys, demuxer, options);
}

ReplayResult replay_trace(const workloads::Workload& workload,
                          core::Demuxer& demuxer,
                          const ReplayOptions& options) {
  return replay_trace(workload.trace, workload.keys, demuxer, options);
}

}  // namespace tcpdemux::sim
