#include "sim/replay.h"

#include <stdexcept>

namespace tcpdemux::sim {

ReplayResult replay_trace(const Trace& trace,
                          std::span<const net::FlowKey> keys,
                          core::Demuxer& demuxer) {
  if (keys.size() < trace.connections) {
    throw std::invalid_argument("replay: not enough flow keys for trace");
  }
  if (demuxer.size() != 0) {
    throw std::invalid_argument("replay: demuxer must start empty");
  }

  ReplayResult result;
  result.algorithm = demuxer.name();

  // A connection whose first event is kOpen joins the table mid-replay;
  // one with any other first event is pre-established (the paper's steady
  // state); one with no events at all (e.g. a churned session that lived
  // and died before the measurement window) never existed here and must
  // not inflate the table.
  enum class Start : std::uint8_t { kAbsent, kPreEstablished, kOpensLater };
  std::vector<Start> start(trace.connections, Start::kAbsent);
  for (const TraceEvent& e : trace.events) {
    if (start[e.conn] == Start::kAbsent) {
      start[e.conn] = e.kind == TraceEventKind::kOpen
                          ? Start::kOpensLater
                          : Start::kPreEstablished;
    }
  }

  std::vector<core::Pcb*> pcbs(trace.connections, nullptr);
  for (std::uint32_t c = 0; c < trace.connections; ++c) {
    if (start[c] != Start::kPreEstablished) continue;
    pcbs[c] = demuxer.insert(keys[c]);
    if (pcbs[c] == nullptr) {
      throw std::invalid_argument("replay: duplicate or rejected flow key");
    }
  }

  result.overall.reserve(trace.arrivals());
  for (const TraceEvent& event : trace.events) {
    switch (event.kind) {
      case TraceEventKind::kOpen:
        pcbs[event.conn] = demuxer.insert(keys[event.conn]);
        if (pcbs[event.conn] == nullptr) {
          throw std::invalid_argument("replay: open of duplicate key");
        }
        ++result.opens;
        break;
      case TraceEventKind::kClose:
        if (demuxer.erase(keys[event.conn])) {
          pcbs[event.conn] = nullptr;
          ++result.closes;
        }
        break;
      case TraceEventKind::kTransmit:
        if (pcbs[event.conn] != nullptr) {
          demuxer.note_sent(pcbs[event.conn]);
        }
        break;
      case TraceEventKind::kArrivalData:
      case TraceEventKind::kArrivalAck: {
        const auto kind = event.kind == TraceEventKind::kArrivalData
                              ? core::SegmentKind::kData
                              : core::SegmentKind::kAck;
        const auto r = demuxer.lookup(keys[event.conn], kind);
        ++result.lookups;
        if (r.cache_hit) ++result.cache_hits;
        if (r.pcb == nullptr) ++result.misses;
        result.overall.add(r.examined);
        if (kind == core::SegmentKind::kData) {
          result.data.add(r.examined);
        } else {
          result.ack.add(r.examined);
        }
        break;
      }
    }
  }
  return result;
}

ReplayResult replay_trace(const Trace& trace, core::Demuxer& demuxer) {
  AddressSpaceParams params;
  params.clients = trace.connections;
  const auto keys = make_client_keys(params);
  return replay_trace(trace, keys, demuxer);
}

}  // namespace tcpdemux::sim
