#include "sim/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tcpdemux::sim {

double Rng::truncated_exponential(double mean, double cap) noexcept {
  // F(cap) = 1 - e^{-cap/mean}; draw u uniform in [0, F(cap)) and invert.
  const double f_cap = 1.0 - std::exp(-cap / mean);
  const double u = uniform() * f_cap;
  return -mean * std::log1p(-u);
}

ZipfSampler::ZipfSampler(std::uint32_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("zipf: need at least one rank");
  if (!(s > 0.0)) throw std::invalid_argument("zipf: exponent must be > 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::uint32_t r = 0; r < n; ++r) {
    sum += std::pow(static_cast<double>(r) + 1.0, -s);
    cdf_[r] = sum;
  }
  for (double& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding shaving the last rank
}

std::uint32_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::uint32_t rank) const noexcept {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace tcpdemux::sim
