#include "sim/rng.h"

#include <cmath>

namespace tcpdemux::sim {

double Rng::truncated_exponential(double mean, double cap) noexcept {
  // F(cap) = 1 - e^{-cap/mean}; draw u uniform in [0, F(cap)) and invert.
  const double f_cap = 1.0 - std::exp(-cap / mean);
  const double u = uniform() * f_cap;
  return -mean * std::log1p(-u);
}

}  // namespace tcpdemux::sim
