// Deterministic random-number source with the distributions the TPC/A
// rules require.
//
// §2 of the paper: think time is drawn from a *truncated*
// negative-exponential distribution whose mean must be at least 10 s and
// whose maximum must be at least 10x the mean. truncated_exponential()
// implements proper truncation (inverse CDF restricted to [0, cap]), not
// clamping, so no probability mass piles up at the cap.
#ifndef TCPDEMUX_SIM_RNG_H_
#define TCPDEMUX_SIM_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace tcpdemux::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedcafef00dULL) noexcept
      : engine_(seed) {}

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return std::generate_canonical<double, 53>(engine_);
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Negative-exponential with the given mean.
  [[nodiscard]] double exponential(double mean) noexcept {
    return -mean * std::log1p(-uniform());
  }

  /// Exponential(mean) truncated at `cap`: inverse CDF over [0, F(cap)].
  /// The realized mean is slightly below `mean`
  /// (analytic::truncated_exp_mean gives the exact value).
  [[nodiscard]] double truncated_exponential(double mean, double cap) noexcept;

  /// Raw engine access for std:: distributions in tests.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Bounded Zipf(s) distribution over ranks [0, n): P(rank r) proportional
/// to (r+1)^-s. Jain's locality study (DEC-TR-592) and every flow-popularity
/// measurement since describe real traffic this way; the scenario workloads
/// (sim/workloads) use it for heavy-tailed flow selection.
///
/// The CDF is precomputed once (O(n) doubles) and each sample is one
/// uniform draw plus a binary search — exact, deterministic given the Rng,
/// and fast enough for multi-million-arrival traces.
class ZipfSampler {
 public:
  /// `n` ranks, exponent `s` > 0 (s near 1 is the classic web/flow regime).
  ZipfSampler(std::uint32_t n, double s);

  /// Draws a rank in [0, n); rank 0 is the most popular.
  [[nodiscard]] std::uint32_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::uint32_t ranks() const noexcept {
    return static_cast<std::uint32_t>(cdf_.size());
  }
  [[nodiscard]] double exponent() const noexcept { return s_; }

  /// Probability mass of `rank` (for chi-square checks in tests).
  [[nodiscard]] double pmf(std::uint32_t rank) const noexcept;

 private:
  std::vector<double> cdf_;  ///< cdf_[r] = P(rank <= r), cdf_.back() == 1
  double s_ = 1.0;
};

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_RNG_H_
