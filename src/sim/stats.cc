#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tcpdemux::sim {

std::uint32_t SampleStats::percentile(double q) const {
  if (samples_.empty()) return 0;
  // Sort a cached copy, never samples_ itself: mean_ci95's batch means are
  // only meaningful over the arrival order, so percentile() must not be
  // allowed to destroy it (it used to sort in place, silently zeroing any
  // mean_ci95() call made afterwards).
  if (sorted_cache_.size() != samples_.size()) {
    sorted_cache_ = samples_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted_cache_[std::min(index, sorted_cache_.size() - 1)];
}

std::vector<std::size_t> SampleStats::log2_buckets() const {
  std::vector<std::size_t> buckets;
  for (const std::uint32_t v : samples_) {
    std::size_t b = 0;
    for (std::uint32_t x = v; x != 0; x >>= 1) ++b;  // bit width
    if (b >= buckets.size()) buckets.resize(b + 1, 0);
    ++buckets[b];
  }
  return buckets;
}

double SampleStats::mean_ci95(std::size_t batches) const {
  if (batches < 2 || samples_.size() < 2 * batches) return 0.0;
  const std::size_t per_batch = samples_.size() / batches;
  std::vector<double> batch_means;
  batch_means.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    double sum = 0.0;
    for (std::size_t i = b * per_batch; i < (b + 1) * per_batch; ++i) {
      sum += samples_[i];
    }
    batch_means.push_back(sum / static_cast<double>(per_batch));
  }
  const double grand =
      std::accumulate(batch_means.begin(), batch_means.end(), 0.0) /
      static_cast<double>(batches);
  double var = 0.0;
  for (const double m : batch_means) var += (m - grand) * (m - grand);
  var /= static_cast<double>(batches - 1);
  // t-quantile for 95% two-sided; 2.09 covers 19 dof, 1.96 the limit.
  const double t = batches <= 20 ? 2.09 : 1.96;
  return t * std::sqrt(var / static_cast<double>(batches));
}

double SampleStats::stddev() const noexcept {
  if (samples_.empty()) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const std::uint32_t v : samples_) {
    const double d = static_cast<double>(v) - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

}  // namespace tcpdemux::sim
