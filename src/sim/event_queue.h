// Discrete-event simulation core: a time-ordered event queue and clock.
//
// Events with equal timestamps fire in scheduling order (a strictly
// monotone sequence number breaks ties), which keeps runs bit-reproducible
// across platforms.
#ifndef TCPDEMUX_SIM_EVENT_QUEUE_H_
#define TCPDEMUX_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace tcpdemux::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `fn` at absolute time `when`. `when` must be >= now().
  void schedule_at(double when, Handler fn);

  /// Schedules `fn` at now() + delay.
  void schedule_in(double delay, Handler fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty or the next event is after
  /// `horizon`; the clock ends at min(horizon, last event time) — or at
  /// `horizon` exactly if the queue drains first. Returns the number of
  /// events executed.
  std::size_t run_until(double horizon);

  /// Runs everything.
  std::size_t run() { return run_until(kForever); }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  static constexpr double kForever = 1e300;

 private:
  struct Entry {
    double when;
    std::uint64_t seq;
    Handler fn;
  };
  // Min-heap ordering for std::push_heap/std::pop_heap (which build
  // max-heaps): "later fires last".
  static bool fires_later(const Entry& a, const Entry& b) noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  std::vector<Entry> heap_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_EVENT_QUEUE_H_
