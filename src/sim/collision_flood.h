// Collision-flood adversarial workload: an attacker who knows (or can
// probe) the victim's demultiplexer crafts 4-tuples that all land in one
// hash chain or probe run, collapsing the paper's O(N/2H) lookup back to
// the BSD linear scan — the hash-flooding DoS of Crosby & Wallach (2003)
// aimed at a PCB table.
//
// Two crafting strengths, matching the two defense tiers in net/hashers.h:
//
//   * craft_colliding_keys targets a small *index* range (a chain number
//     or a masked slot) by brute force against any caller-supplied index
//     function. This is the attacker who observed which chain is slow.
//     A seeded hasher defeats the precomputation: the index function
//     changes when the seed does.
//
//   * craft_xorfold_collisions solves the xor_fold hash in closed form,
//     producing keys with identical full 32-bit hashes. These collide
//     under ANY table size, growth policy, and — because the legacy
//     hashers' seeding is a post-mix of the 32-bit value — under every
//     seed of the xor_fold family. Only a keyed PRF (siphash@seed)
//     scatters them.
//
// generate_collision_flood embeds the crafted keys in a benign TPC/A
// population: the attack connections open mid-trace (a SYN flood arriving
// at a running server) and then receive traffic, so replay measures the
// benign users' collateral damage as well as the attacker's own cost.
#ifndef TCPDEMUX_SIM_COLLISION_FLOOD_H_
#define TCPDEMUX_SIM_COLLISION_FLOOD_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/flow_key.h"
#include "net/ip_addr.h"
#include "sim/address_space.h"
#include "sim/tpca_workload.h"
#include "sim/trace.h"

namespace tcpdemux::sim {

struct CollisionFloodParams {
  std::uint32_t count = 1024;  ///< crafted keys wanted
  net::Ipv4Addr server_addr = net::Ipv4Addr(10, 0, 0, 1);
  std::uint16_t server_port = 1521;
};

/// Brute-forces `count` distinct fully-specified keys (local = server)
/// whose `index_of` equals `target`. `index_of` is the victim structure's
/// placement function — e.g. chain_of for a chained table or the masked
/// slot index for the flat table. The search walks foreign ports then
/// foreign addresses, so cost is ~count * index_range trials.
[[nodiscard]] std::vector<net::FlowKey> craft_colliding_keys(
    const CollisionFloodParams& params,
    const std::function<std::uint32_t(const net::FlowKey&)>& index_of,
    std::uint32_t target);

/// Closed-form xor_fold break: `count` keys (count <= 65535, one per
/// foreign port) whose full 32-bit xor_fold hash equals `target_hash`.
[[nodiscard]] std::vector<net::FlowKey> craft_xorfold_collisions(
    const CollisionFloodParams& params, std::uint32_t target_hash);

struct CollisionFloodTraceParams {
  TpcaWorkloadParams benign;             ///< background population
  AddressSpaceParams benign_addresses;   ///< its client keys
  double attack_start = 10.0;     ///< first attack open, seconds
  double attack_duration = 60.0;  ///< opens spread uniformly over this
  std::uint32_t arrivals_per_conn = 8;  ///< data arrivals per attack conn
};

struct CollisionFloodResult {
  Trace trace;                     ///< benign + attack, time-merged
  std::vector<net::FlowKey> keys;  ///< one per trace connection
  std::uint32_t benign_conns = 0;  ///< keys[0..benign_conns) are benign
};

/// Builds the mixed workload: the benign TPC/A trace plus one attack
/// connection per crafted key, each opening mid-trace (kOpen); every
/// attack connection then receives `arrivals_per_conn` data segments
/// after the full flood is established, so the lookups measure the
/// polluted table rather than each PCB's moment at its chain head.
[[nodiscard]] CollisionFloodResult generate_collision_flood(
    const CollisionFloodTraceParams& params,
    std::span<const net::FlowKey> attack_keys);

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_COLLISION_FLOOD_H_
