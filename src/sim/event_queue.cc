#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace tcpdemux::sim {

void EventQueue::schedule_at(double when, Handler fn) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue: scheduling into the past");
  }
  heap_.push_back(Entry{when, seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), fires_later);
}

std::size_t EventQueue::run_until(double horizon) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front().when <= horizon) {
    std::pop_heap(heap_.begin(), heap_.end(), fires_later);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    now_ = entry.when;
    entry.fn();  // may schedule further events
    ++executed;
  }
  if (heap_.empty() && horizon < kForever && now_ < horizon) {
    now_ = horizon;
  }
  return executed;
}

}  // namespace tcpdemux::sim
