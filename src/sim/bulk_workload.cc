#include "sim/bulk_workload.h"

#include <stdexcept>

#include "sim/rng.h"

namespace tcpdemux::sim {

Trace generate_bulk_trace(const BulkWorkloadParams& params) {
  if (params.connections == 0 || params.train_length == 0) {
    throw std::invalid_argument("bulk workload: empty configuration");
  }
  Rng rng(params.seed);
  Trace trace;
  trace.connections = params.connections;

  for (std::uint32_t conn = 0; conn < params.connections; ++conn) {
    double t = rng.exponential(params.train_gap_mean);
    while (t < params.duration) {
      std::uint32_t since_ack = 0;
      for (std::uint32_t i = 0;
           i < params.train_length && t < params.duration; ++i) {
        trace.events.push_back(
            TraceEvent{t, conn, TraceEventKind::kArrivalData});
        if (++since_ack == params.segments_per_ack) {
          trace.events.push_back(
              TraceEvent{t, conn, TraceEventKind::kTransmit});
          since_ack = 0;
        }
        t += params.segment_spacing;
      }
      if (since_ack != 0) {
        trace.events.push_back(TraceEvent{t, conn, TraceEventKind::kTransmit});
      }
      t += rng.exponential(params.train_gap_mean);
    }
  }

  trace.sort_by_time();
  return trace;
}

}  // namespace tcpdemux::sim
