// Bulk-data-transfer workload: the packet-train traffic [JR86] that the
// BSD one-entry cache was designed for (paper §1).
//
// A receiving server sees a small number of concurrent bulk connections,
// each delivering trains of back-to-back data segments separated by idle
// gaps. Within a train every segment after the first hits the one-entry
// cache; the cache only misses when trains from different connections
// interleave. The server transmits an ack per `segments_per_ack` data
// segments (delayed-ack style), which exercises the send/receive cache's
// send side.
#ifndef TCPDEMUX_SIM_BULK_WORKLOAD_H_
#define TCPDEMUX_SIM_BULK_WORKLOAD_H_

#include <cstdint>

#include "sim/trace.h"

namespace tcpdemux::sim {

struct BulkWorkloadParams {
  std::uint32_t connections = 4;
  std::uint32_t train_length = 16;      ///< data segments per train
  double segment_spacing = 20e-6;       ///< s between segments in a train
  double train_gap_mean = 0.01;         ///< s, exponential gap between trains
  std::uint32_t segments_per_ack = 2;   ///< delayed-ack ratio
  double duration = 10.0;               ///< simulated seconds
  std::uint64_t seed = 7;
};

[[nodiscard]] Trace generate_bulk_trace(const BulkWorkloadParams& params);

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_BULK_WORKLOAD_H_
