// Simulated NIC receive-side scaling in front of a sharded demuxer.
//
// The missing half of core/ShardedDemuxer's story is the device: hardware
// computes the Toeplitz hash over each arriving frame's 4-tuple, masks it
// into the indirection table, and DMA-steers the frame to that queue's
// core — before any host code runs. This class plays that NIC against a
// ShardedDemuxer and runs real per-shard TCP machines over whatever
// arrives, which is exactly where mis-steering becomes observable:
//
//   * the NIC keeps its OWN copy of the indirection table and steering
//     seed. The host reprogramming a live NIC is not atomic with its own
//     table update (ethtool -X races in-flight frames), and a deliberately
//     planted wrong entry models a buggy driver or a migrated connection.
//     A frame whose steered queue does not hold its PCB is a *mis-steer*;
//   * mis-steered frames are not dropped — the receiving shard forwards
//     them through a bounded per-shard handoff inbox to the shard that
//     owns the PCB (IncludeOS tcp_smp's guide()-to-owning-CPU redirector,
//     SNIPPETS.md snippet 2). Inboxes drain every `drain_interval` frames
//     and whenever ordering demands it, so queue depth is a real measured
//     quantity, not always-zero bookkeeping;
//   * a full inbox drops the frame (handoff_drops) — the backpressure a
//     bounded queue exists to make visible.
//
// run() replays a sim workload (churn, NAT population, TPC/A, ...) frame
// by frame: kOpen becomes SYN + handshake-ACK frames, kClose becomes
// FIN + final-ACK frames, data/ack arrivals become in-order segments whose
// headers are built from live PCB state. The Result reports the NIC-side
// truth — frames, mis-steers, handoff traffic, peak queue depth, peak
// cross-shard occupancy skew — which tests check against independently
// computed ground truth.
#ifndef TCPDEMUX_SIM_NIC_DISPATCH_H_
#define TCPDEMUX_SIM_NIC_DISPATCH_H_

#include <cstdint>
#include <vector>

#include "core/sharded_demuxer.h"
#include "net/rss.h"
#include "sim/workloads/workload.h"

namespace tcpdemux::sim {

class NicDispatch {
 public:
  struct Options {
    /// Per-shard handoff inbox bound; a mis-steered frame arriving at a
    /// full inbox is dropped and counted.
    std::size_t handoff_capacity = 1024;
    /// Frames between periodic whole-fleet inbox drains.
    std::uint32_t drain_interval = 64;
    /// Payload bytes per data segment.
    std::uint32_t payload_len = 100;
  };

  struct ShardStats {
    std::uint64_t frames = 0;       ///< frames the NIC steered to this queue
    std::uint64_t handoffs_in = 0;  ///< frames arriving via this shard's inbox
    std::uint64_t max_inbox_depth = 0;
  };

  struct Result {
    std::uint64_t frames = 0;     ///< inbound frames the NIC steered
    std::uint64_t missteers = 0;  ///< frames steered to a non-owning shard
    std::uint64_t handoffs = 0;   ///< mis-steered frames enqueued for handoff
    std::uint64_t handoff_drops = 0;  ///< handoffs refused (inbox full)
    std::uint64_t max_handoff_depth = 0;  ///< deepest any inbox got
    std::uint64_t lost = 0;  ///< frames resolving to no PCB anywhere (want 0)
    std::uint64_t duplicate_inserts = 0;  ///< SYNs for resident keys (want 0)
    std::uint64_t opens = 0;
    std::uint64_t closes = 0;
    std::uint64_t dirty_closes = 0;  ///< closes not reaching CLOSED (want 0)
    std::uint64_t transmits = 0;
    std::uint64_t server_emits = 0;  ///< segments the TCP machines sent
    double peak_occ_skew = 0.0;  ///< worst cross-shard occupancy skew seen
    std::vector<ShardStats> shard;

    [[nodiscard]] double missteer_rate() const noexcept {
      return frames == 0 ? 0.0
                         : static_cast<double>(missteers) /
                               static_cast<double>(frames);
    }
  };

  /// `demuxer` is the host stack (not owned; must outlive this). The NIC
  /// table starts as an exact copy of the host's.
  explicit NicDispatch(core::ShardedDemuxer& demuxer)
      : NicDispatch(demuxer, Options()) {}
  NicDispatch(core::ShardedDemuxer& demuxer, Options options);

  /// NIC-side steering (may disagree with the host after set_nic_entry
  /// or a host-side seed rotation the NIC has not been re-programmed for).
  [[nodiscard]] std::uint32_t nic_queue_for(
      const net::FlowKey& key) const noexcept {
    return net::rss_steer(nic_steering_, key, nic_table_);
  }

  /// Plants a NIC-side table rewrite the host tables do not see: every
  /// flow whose hash masks to `index` now lands on `queue`, mis-steered.
  void set_nic_entry(std::uint32_t index, std::uint32_t queue) {
    nic_table_.set_entry(index, queue % demuxer_.shard_count());
  }

  /// Re-programs the NIC from the host's current table and seed.
  void sync_with_host();

  /// Replays `workload` through the NIC + shards. Resets no demuxer state:
  /// callers wanting a clean ledger reset the demuxer first.
  Result run(const workloads::Workload& workload);

 private:
  core::ShardedDemuxer& demuxer_;
  Options options_;
  net::HashSpec nic_steering_;
  net::RssIndirectionTable nic_table_;
};

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_NIC_DISPATCH_H_
