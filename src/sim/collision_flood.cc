#include "sim/collision_flood.h"

namespace tcpdemux::sim {
namespace {

net::FlowKey server_side_key(const CollisionFloodParams& params,
                             std::uint32_t foreign_addr,
                             std::uint16_t foreign_port) {
  net::FlowKey key;
  key.local_addr = params.server_addr;
  key.local_port = params.server_port;
  key.foreign_addr = net::Ipv4Addr(foreign_addr);
  key.foreign_port = foreign_port;
  return key;
}

}  // namespace

std::vector<net::FlowKey> craft_colliding_keys(
    const CollisionFloodParams& params,
    const std::function<std::uint32_t(const net::FlowKey&)>& index_of,
    std::uint32_t target) {
  std::vector<net::FlowKey> keys;
  keys.reserve(params.count);
  // Walk (foreign_addr, foreign_port) in a fixed order; every hit is a
  // distinct tuple, so no dedup is needed. An attacker does the same
  // precomputation offline against the published (unkeyed) hash.
  for (std::uint32_t addr = 0x0a800001; keys.size() < params.count; ++addr) {
    for (std::uint32_t port = 1; port <= 0xffff; ++port) {
      const net::FlowKey key =
          server_side_key(params, addr, static_cast<std::uint16_t>(port));
      if (index_of(key) != target) continue;
      keys.push_back(key);
      if (keys.size() == params.count) break;
    }
  }
  return keys;
}

std::vector<net::FlowKey> craft_xorfold_collisions(
    const CollisionFloodParams& params, std::uint32_t target_hash) {
  // xor_fold(key) = local_addr ^ foreign_addr ^ (local_port<<16 | fport):
  // fix the foreign port, solve for the one foreign address that lands on
  // `target_hash`. One key per port, all with identical full 32-bit hash.
  std::vector<net::FlowKey> keys;
  const std::uint32_t count =
      params.count <= 0xffff ? params.count : 0xffff;
  keys.reserve(count);
  const std::uint32_t local = params.server_addr.value();
  for (std::uint32_t port = 1; port <= 0xffff && keys.size() < count;
       ++port) {
    const std::uint32_t foreign =
        target_hash ^ local ^
        ((static_cast<std::uint32_t>(params.server_port) << 16) | port);
    keys.push_back(
        server_side_key(params, foreign, static_cast<std::uint16_t>(port)));
  }
  return keys;
}

CollisionFloodResult generate_collision_flood(
    const CollisionFloodTraceParams& params,
    std::span<const net::FlowKey> attack_keys) {
  CollisionFloodResult result;
  result.trace = generate_tpca_trace(params.benign);
  result.benign_conns = result.trace.connections;

  AddressSpaceParams addresses = params.benign_addresses;
  addresses.clients = result.benign_conns;
  result.keys = make_client_keys(addresses);

  const auto n = static_cast<std::uint32_t>(attack_keys.size());
  Trace attack;
  attack.connections = n;
  attack.events.reserve(static_cast<std::size_t>(n) *
                        (1 + params.arrivals_per_conn));
  const double end = params.attack_start + params.attack_duration;
  for (std::uint32_t i = 0; i < n; ++i) {
    // Opens spread uniformly over the attack window; the data segments
    // arrive AFTER the whole flood is established, when the table is
    // fully polluted — arrivals interleaved with the opens would find
    // each young PCB still at its chain head and measure nothing. All
    // timing is deterministic by design so every algorithm replays the
    // identical flood.
    const double open =
        params.attack_start +
        params.attack_duration * (static_cast<double>(i) + 0.5) /
            static_cast<double>(n);
    attack.events.push_back({open, i, TraceEventKind::kOpen});
    for (std::uint32_t j = 0; j < params.arrivals_per_conn; ++j) {
      const double t = end + 0.010 * (static_cast<double>(i) + 1.0) +
                       0.001 * (static_cast<double>(j) + 1.0);
      attack.events.push_back({t, i, TraceEventKind::kArrivalData});
    }
  }
  attack.sort_by_time();

  result.trace.merge(attack);
  result.keys.insert(result.keys.end(), attack_keys.begin(),
                     attack_keys.end());
  return result;
}

}  // namespace tcpdemux::sim
