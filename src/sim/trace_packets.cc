#include "sim/trace_packets.h"

#include <stdexcept>

#include "net/headers.h"
#include "net/packet.h"

namespace tcpdemux::sim {

std::vector<TimedPacket> synthesize_packets(
    const Trace& trace, std::span<const net::FlowKey> keys,
    const TracePacketOptions& options) {
  if (keys.size() < trace.connections) {
    throw std::invalid_argument("synthesize_packets: not enough flow keys");
  }

  // Mark, per connection, which kTransmit events carry the response
  // payload: the last transmit before each acknowledgement arrival (the
  // ack acknowledges the response). All other transmits are pure ACKs,
  // which also covers bulk traces (delayed acks, no kArrivalAck events).
  std::vector<bool> is_response(trace.events.size(), false);
  {
    std::vector<std::ptrdiff_t> last_transmit(trace.connections, -1);
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
      const TraceEvent& e = trace.events[i];
      if (e.kind == TraceEventKind::kTransmit) {
        last_transmit[e.conn] = static_cast<std::ptrdiff_t>(i);
      } else if (e.kind == TraceEventKind::kArrivalAck &&
                 last_transmit[e.conn] >= 0) {
        is_response[static_cast<std::size_t>(last_transmit[e.conn])] = true;
        last_transmit[e.conn] = -1;
      }
    }
  }

  // Per-connection stream state, as if the handshake completed long ago.
  std::vector<std::uint32_t> client_seq(trace.connections);
  std::vector<std::uint32_t> server_seq(trace.connections);
  for (std::uint32_t c = 0; c < trace.connections; ++c) {
    client_seq[c] = c * 1000000u + 1u;
    server_seq[c] = c * 1000000u + 500001u;
  }

  std::vector<TimedPacket> out;
  out.reserve(trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    const net::FlowKey& key = keys[e.conn];  // server perspective
    net::PacketBuilder builder;

    switch (e.kind) {
      case TraceEventKind::kArrivalData: {
        builder.from({key.foreign_addr, key.foreign_port})
            .to({key.local_addr, key.local_port})
            .seq(client_seq[e.conn])
            .ack_seq(server_seq[e.conn])
            .flags(net::TcpFlag::kPsh)
            .payload_size(options.query_bytes);
        client_seq[e.conn] += options.query_bytes;
        out.push_back(TimedPacket{e.time, true, builder.build()});
        break;
      }
      case TraceEventKind::kArrivalAck: {
        builder.from({key.foreign_addr, key.foreign_port})
            .to({key.local_addr, key.local_port})
            .seq(client_seq[e.conn])
            .ack_seq(server_seq[e.conn]);
        out.push_back(TimedPacket{e.time, true, builder.build()});
        break;
      }
      case TraceEventKind::kOpen:
      case TraceEventKind::kClose:
        // Structural events; the handshake/teardown packets are outside
        // the synthesized stream's scope.
        break;
      case TraceEventKind::kTransmit: {
        if (!options.include_server_segments) break;
        builder.from({key.local_addr, key.local_port})
            .to({key.foreign_addr, key.foreign_port})
            .seq(server_seq[e.conn])
            .ack_seq(client_seq[e.conn]);
        if (is_response[i]) {
          builder.flags(net::TcpFlag::kPsh)
              .payload_size(options.response_bytes);
          server_seq[e.conn] += options.response_bytes;
        }
        out.push_back(TimedPacket{e.time, false, builder.build()});
        break;
      }
    }
  }
  return out;
}

}  // namespace tcpdemux::sim
