#include "sim/flash_crowd_workload.h"

#include <stdexcept>

#include "sim/rng.h"

namespace tcpdemux::sim {

Trace generate_flash_crowd_trace(const FlashCrowdParams& params) {
  if (params.users == 0) {
    throw std::invalid_argument("flash crowd: users must be >= 1");
  }
  if (params.response_time < params.rtt) {
    throw std::invalid_argument(
        "flash crowd: response time must cover the round trip");
  }
  if (params.ramp <= 0.0 || params.ramp > params.duration) {
    throw std::invalid_argument("flash crowd: ramp must be in (0, duration]");
  }

  Rng rng(params.seed);
  Trace trace;
  trace.connections = params.users;

  const double half_rtt = 0.5 * params.rtt;
  const double server_processing = params.response_time - params.rtt;
  const double cap = params.think_cap_factor * params.think_mean;

  for (std::uint32_t user = 0; user < params.users; ++user) {
    const double join = rng.uniform(0.0, params.ramp);
    trace.events.push_back(TraceEvent{join, user, TraceEventKind::kOpen});
    // First transaction follows the connect promptly (the user showed up
    // to do something), then the normal think cycle.
    double entry = join + rng.uniform(0.1, 2.0);
    while (entry < params.duration) {
      const double query_arrival = entry + half_rtt;
      if (query_arrival >= params.duration) break;
      trace.events.push_back(
          TraceEvent{query_arrival, user, TraceEventKind::kArrivalData});
      trace.events.push_back(
          TraceEvent{query_arrival, user, TraceEventKind::kTransmit});
      const double response_sent = query_arrival + server_processing;
      if (response_sent < params.duration) {
        trace.events.push_back(
            TraceEvent{response_sent, user, TraceEventKind::kTransmit});
      }
      const double ack_arrival = query_arrival + params.response_time;
      if (ack_arrival < params.duration) {
        trace.events.push_back(
            TraceEvent{ack_arrival, user, TraceEventKind::kArrivalAck});
      }
      entry += params.response_time +
               rng.truncated_exponential(params.think_mean, cap);
    }
  }

  trace.sort_by_time();
  return trace;
}

}  // namespace tcpdemux::sim
