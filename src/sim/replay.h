// Trace replay: runs one workload trace through a demuxer and measures the
// paper's figure of merit.
//
// Replay performs the paper's steady-state experiment: all connections are
// established up front (PCBs inserted in connection order, so the newest
// sits at each list's head, exactly as BSD's head insertion leaves it),
// then every trace event drives the demuxer — arrivals through lookup()
// with the right SegmentKind, transmissions through note_sent().
#ifndef TCPDEMUX_SIM_REPLAY_H_
#define TCPDEMUX_SIM_REPLAY_H_

#include <span>
#include <string>
#include <vector>

#include "core/demuxer.h"
#include "sim/address_space.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace tcpdemux::sim {

struct ReplayResult {
  std::string algorithm;
  SampleStats overall;  ///< examined PCBs per arrival, all classes
  SampleStats data;     ///< transaction queries only
  SampleStats ack;      ///< transport-level acknowledgements only
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t misses = 0;  ///< arrivals that matched no PCB (must be 0)
  std::uint64_t opens = 0;   ///< mid-replay connection establishments
  std::uint64_t closes = 0;  ///< mid-replay connection teardowns

  [[nodiscard]] double hit_rate() const noexcept {
    return lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(lookups);
  }
};

/// Replays `trace` through `demuxer` using one flow key per connection.
/// `keys` must contain at least `trace.connections` distinct keys.
/// The demuxer must be empty; PCBs for all connections are inserted first.
[[nodiscard]] ReplayResult replay_trace(const Trace& trace,
                                        std::span<const net::FlowKey> keys,
                                        core::Demuxer& demuxer);

/// Convenience: synthesizes `trace.connections` client keys with the
/// default address-space parameters (sequential LAN hosts) and replays.
[[nodiscard]] ReplayResult replay_trace(const Trace& trace,
                                        core::Demuxer& demuxer);

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_REPLAY_H_
