// Trace replay: runs one workload trace through a demuxer and measures the
// paper's figure of merit.
//
// Replay performs the paper's steady-state experiment: all connections are
// established up front (PCBs inserted in connection order, so the newest
// sits at each list's head, exactly as BSD's head insertion leaves it),
// then every trace event drives the demuxer — arrivals through lookup()
// with the right SegmentKind, transmissions through note_sent().
#ifndef TCPDEMUX_SIM_REPLAY_H_
#define TCPDEMUX_SIM_REPLAY_H_

#include <span>
#include <string>
#include <vector>

#include "core/demuxer.h"
#include "report/telemetry.h"
#include "sim/address_space.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "sim/workloads/workload.h"

namespace tcpdemux::sim {

/// Optional observability knobs for one replay run. The defaults disable
/// everything, leaving the measured event loop byte-for-byte the
/// paper-faithful one.
struct ReplayOptions {
  /// Take one telemetry sample (examined-PCB percentiles + occupancy skew,
  /// report::interval_sample) every this many arrivals; 0 disables the
  /// series. Enables the demuxer's telemetry histograms for the run.
  std::uint64_t telemetry_interval = 0;
  /// Time one lookup in N with report::LatencySampler; 0 disables. The
  /// clock runs in the replay loop, never inside the demuxer.
  std::uint32_t latency_sample_every = 0;
};

struct ReplayResult {
  std::string algorithm;
  SampleStats overall;  ///< examined PCBs per arrival, all classes
  SampleStats data;     ///< transaction queries only
  SampleStats ack;      ///< transport-level acknowledgements only
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t misses = 0;  ///< arrivals that matched no PCB (must be 0)
  std::uint64_t opens = 0;   ///< mid-replay connection establishments
  std::uint64_t closes = 0;  ///< mid-replay connection teardowns

  /// Interval time series (empty unless ReplayOptions::telemetry_interval
  /// was set; the final partial interval is included).
  report::TelemetrySeries series;
  /// Sampled lookup latency (empty unless latency_sample_every was set).
  report::Log2Histogram latency_ns;

  [[nodiscard]] double hit_rate() const noexcept {
    return lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(lookups);
  }
};

/// Replays `trace` through `demuxer` using one flow key per connection.
/// `keys` must contain at least `trace.connections` distinct keys.
/// The demuxer must be empty; PCBs for all connections are inserted first.
[[nodiscard]] ReplayResult replay_trace(const Trace& trace,
                                        std::span<const net::FlowKey> keys,
                                        core::Demuxer& demuxer,
                                        const ReplayOptions& options = {});

/// Convenience: synthesizes `trace.connections` client keys with the
/// default address-space parameters (sequential LAN hosts) and replays.
[[nodiscard]] ReplayResult replay_trace(const Trace& trace,
                                        core::Demuxer& demuxer,
                                        const ReplayOptions& options = {});

/// Replays a scenario workload (trace + its own keys). Every generator in
/// sim/workloads and every spec the WorkloadSpec grammar accepts runs
/// through this one entry point.
[[nodiscard]] ReplayResult replay_trace(const workloads::Workload& workload,
                                        core::Demuxer& demuxer,
                                        const ReplayOptions& options = {});

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_REPLAY_H_
