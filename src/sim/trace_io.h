// Text (CSV) serialization for workload traces, so generated workloads can
// be archived, diffed, and replayed across runs or fed to external tools.
//
// Format: a header line `tcpdemux-trace,v1,<connections>`, then one line
// per event: `<time>,<conn>,<kind>` with kind in
// {data, ack, xmit, open, close}.
#ifndef TCPDEMUX_SIM_TRACE_IO_H_
#define TCPDEMUX_SIM_TRACE_IO_H_

#include <istream>
#include <optional>
#include <ostream>

#include "sim/trace.h"

namespace tcpdemux::sim {

/// Writes `trace` as CSV. Returns false on stream failure.
bool save_trace(std::ostream& os, const Trace& trace);

/// Parses a trace written by save_trace. Returns nullopt on any format
/// error (bad header, unknown kind, malformed number, out-of-range conn,
/// or unordered timestamps).
[[nodiscard]] std::optional<Trace> load_trace(std::istream& is);

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_TRACE_IO_H_
