// Synthesizes realistic client flow keys for trace replay and hash-quality
// evaluation.
//
// How client addresses and ports are laid out matters to the Sequent
// algorithm: a weak hash over a pathological population (e.g. terminal
// concentrators that differ only in low port bits) produces unbalanced
// chains. The patterns here model the populations a 1992 OLTP server
// actually saw, plus an adversarial one.
#ifndef TCPDEMUX_SIM_ADDRESS_SPACE_H_
#define TCPDEMUX_SIM_ADDRESS_SPACE_H_

#include <cstdint>
#include <vector>

#include "net/flow_key.h"

namespace tcpdemux::sim {

enum class ClientPattern : std::uint8_t {
  /// One host per client, sequential addresses across /24 subnets,
  /// identical client port (dedicated terminals on a LAN).
  kSequentialHosts,
  /// A few concentrator hosts, sequential ephemeral ports (terminal
  /// servers multiplexing many users — stresses the port bits).
  kConcentrators,
  /// Uniformly random host addresses and ephemeral ports.
  kRandom,
  /// Adversarial: keys differ only in bits a weak additive fold cancels
  /// (address low byte decreases as port increases, keeping the BSD-modulo
  /// sum constant).
  kAdversarialForModulo,
};

struct AddressSpaceParams {
  std::uint32_t clients = 2000;
  net::Ipv4Addr server_addr = net::Ipv4Addr(10, 0, 0, 1);
  std::uint16_t server_port = 1521;  ///< classic OLTP listener
  ClientPattern pattern = ClientPattern::kSequentialHosts;
  std::uint32_t concentrator_hosts = 8;  ///< kConcentrators only
  std::uint64_t seed = 99;
};

/// One fully-specified flow key per client, as seen by the server
/// (local = server, foreign = client). All keys are distinct.
[[nodiscard]] std::vector<net::FlowKey> make_client_keys(
    const AddressSpaceParams& params);

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_ADDRESS_SPACE_H_
