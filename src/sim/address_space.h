// Synthesizes realistic client flow keys for trace replay and hash-quality
// evaluation.
//
// How client addresses and ports are laid out matters to the Sequent
// algorithm: a weak hash over a pathological population (e.g. terminal
// concentrators that differ only in low port bits) produces unbalanced
// chains. The patterns here model the populations a 1992 OLTP server
// actually saw, plus an adversarial one.
#ifndef TCPDEMUX_SIM_ADDRESS_SPACE_H_
#define TCPDEMUX_SIM_ADDRESS_SPACE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "net/flow_key.h"

namespace tcpdemux::sim {

enum class ClientPattern : std::uint8_t {
  /// One host per client, sequential addresses across /24 subnets,
  /// identical client port (dedicated terminals on a LAN).
  kSequentialHosts,
  /// A few concentrator hosts, sequential ephemeral ports (terminal
  /// servers multiplexing many users — stresses the port bits).
  kConcentrators,
  /// Uniformly random host addresses and ephemeral ports.
  kRandom,
  /// Adversarial: keys differ only in bits a weak additive fold cancels
  /// (address low byte decreases as port increases, keeping the BSD-modulo
  /// sum constant).
  kAdversarialForModulo,
};

struct AddressSpaceParams {
  std::uint32_t clients = 2000;
  net::Ipv4Addr server_addr = net::Ipv4Addr(10, 0, 0, 1);
  std::uint16_t server_port = 1521;  ///< classic OLTP listener
  ClientPattern pattern = ClientPattern::kSequentialHosts;
  std::uint32_t concentrator_hosts = 8;  ///< kConcentrators only
  std::uint64_t seed = 99;
};

/// One fully-specified flow key per client, as seen by the server
/// (local = server, foreign = client). All keys are distinct.
[[nodiscard]] std::vector<net::FlowKey> make_client_keys(
    const AddressSpaceParams& params);

/// Stateful ephemeral-port pool for one client host (or one NAT gateway),
/// with the reuse behaviour real stacks exhibit: ports are handed out
/// sequentially through the ephemeral range first, and once the range is
/// exhausted the oldest *released* port is recycled (FIFO, so the port
/// that has been closed longest is reused first — BSD/Linux cycling).
///
/// This is what lets churn workloads exercise the demultiplexers honestly:
/// a reconnecting client really can present a 4-tuple the table held
/// moments ago (close → SYN on the same tuple → wildcard match → exact
/// promotion), which never happens when every session fabricates a
/// never-before-seen port.
class EphemeralPortAllocator {
 public:
  /// Default range mirrors the modern IANA/Linux ephemeral span.
  explicit EphemeralPortAllocator(std::uint16_t lo = 32768,
                                  std::uint16_t hi = 60999);

  /// Hands out a port. Throws std::runtime_error when every port in the
  /// range is simultaneously in use.
  [[nodiscard]] std::uint16_t acquire();

  /// Returns `port` to the pool. Throws std::invalid_argument if the port
  /// is outside the range or not currently in use (double release).
  void release(std::uint16_t port);

  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_count_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return static_cast<std::size_t>(hi_ - lo_) + 1;
  }
  /// Acquires that were served by recycling a previously released port.
  [[nodiscard]] std::uint64_t reuses() const noexcept { return reuses_; }

 private:
  std::uint16_t lo_;
  std::uint16_t hi_;
  std::uint32_t next_fresh_;        ///< next never-used port, > hi_ when spent
  std::deque<std::uint16_t> free_;  ///< released ports, oldest first
  std::vector<bool> busy_;          ///< busy_[port - lo_]
  std::size_t in_use_count_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_ADDRESS_SPACE_H_
