// A simulated point-to-point link: propagation delay, jitter, random
// loss, and finite bandwidth (serialization delay + FIFO queueing), driven
// by the discrete-event queue.
//
// This is the substrate that lets two tcp::Host/SocketTable endpoints talk
// under realistic network conditions — in particular it gives the
// retransmission machinery something to recover from.
#ifndef TCPDEMUX_SIM_LINK_H_
#define TCPDEMUX_SIM_LINK_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace tcpdemux::sim {

class Link {
 public:
  /// Invoked (via the event queue) when a packet arrives at the far end.
  using Receiver = std::function<void(std::vector<std::uint8_t> wire)>;

  struct Options {
    double delay = 0.0005;        ///< one-way propagation, seconds
    double jitter = 0.0;          ///< uniform extra delay in [0, jitter]
    double loss_probability = 0.0;
    double bandwidth_bps = 0.0;   ///< 0 = infinite (no serialization time)
    std::uint64_t seed = 11;
  };

  struct Stats {
    std::uint64_t offered = 0;
    std::uint64_t delivered_scheduled = 0;
    std::uint64_t dropped = 0;
    std::uint64_t bytes = 0;
  };

  Link(EventQueue& queue, Options options, Receiver receiver)
      : queue_(queue),
        options_(options),
        receiver_(std::move(receiver)),
        rng_(options.seed) {}

  /// Offers a packet to the link at the current simulation time.
  void send(std::vector<std::uint8_t> wire) {
    ++stats_.offered;
    stats_.bytes += wire.size();
    if (options_.loss_probability > 0.0 &&
        rng_.uniform() < options_.loss_probability) {
      ++stats_.dropped;
      return;
    }
    double depart = queue_.now();
    if (options_.bandwidth_bps > 0.0) {
      const double serialization =
          static_cast<double>(wire.size()) * 8.0 / options_.bandwidth_bps;
      // FIFO behind whatever is still serializing.
      depart = std::max(depart, busy_until_) + serialization;
      busy_until_ = depart;
    }
    double arrive = depart + options_.delay;
    if (options_.jitter > 0.0) arrive += rng_.uniform(0.0, options_.jitter);
    ++stats_.delivered_scheduled;
    queue_.schedule_at(arrive, [this, wire = std::move(wire)]() mutable {
      receiver_(std::move(wire));
    });
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] double loss_rate() const noexcept {
    return stats_.offered == 0
               ? 0.0
               : static_cast<double>(stats_.dropped) /
                     static_cast<double>(stats_.offered);
  }

 private:
  EventQueue& queue_;
  Options options_;
  Receiver receiver_;
  Rng rng_;
  Stats stats_;
  double busy_until_ = 0.0;
};

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_LINK_H_
