// Distribution summary for per-packet examined-PCB counts.
#ifndef TCPDEMUX_SIM_STATS_H_
#define TCPDEMUX_SIM_STATS_H_

#include <cstdint>
#include <vector>

namespace tcpdemux::sim {

/// Accumulates a sample distribution of non-negative integer observations
/// (PCBs examined per packet) and summarizes it.
class SampleStats {
 public:
  void add(std::uint32_t value) {
    samples_.push_back(value);
    sorted_cache_.clear();
    sum_ += value;
    if (value > max_) max_ = value;
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const noexcept {
    return samples_.empty()
               ? 0.0
               : static_cast<double>(sum_) /
                     static_cast<double>(samples_.size());
  }
  [[nodiscard]] std::uint32_t max() const noexcept { return max_; }

  /// q in [0, 1]; nearest-rank percentile. Sorts lazily (amortized).
  [[nodiscard]] std::uint32_t percentile(double q) const;

  /// Population standard deviation.
  [[nodiscard]] double stddev() const noexcept;

  /// Power-of-two occupancy buckets: bucket b counts samples whose value
  /// has bit-width b (0 -> {0}, 1 -> {1}, 2 -> {2,3}, 3 -> {4..7}, ...).
  /// Useful for rendering the heavy-tailed examined-PCB distributions.
  [[nodiscard]] std::vector<std::size_t> log2_buckets() const;

  /// Half-width of the 95% confidence interval of the mean, by the batch
  /// means method over `batches` equal consecutive batches of the samples
  /// in arrival order. Order-independent of the other summaries — calling
  /// percentile() first does not change the result (percentile() sorts a
  /// separate cache, never the arrival-order samples). Returns 0 when
  /// there are too few samples to form the batches.
  [[nodiscard]] double mean_ci95(std::size_t batches = 20) const;

  void reserve(std::size_t n) { samples_.reserve(n); }

 private:
  std::vector<std::uint32_t> samples_;  ///< arrival order, never reordered
  mutable std::vector<std::uint32_t> sorted_cache_;  ///< lazy, percentile()
  std::uint64_t sum_ = 0;
  std::uint32_t max_ = 0;
};

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_STATS_H_
