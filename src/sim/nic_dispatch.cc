#include "sim/nic_dispatch.h"

#include <algorithm>
#include <deque>

#include "net/headers.h"
#include "tcp/tcp_machine.h"

namespace tcpdemux::sim {
namespace {

enum class FrameKind : std::uint8_t {
  kData,  ///< in-order data segment (ACK flag set, payload attached)
  kAck,   ///< pure acknowledgement (also the handshake's final ACK)
  kFin,   ///< client FIN|ACK
};

struct PendingFrame {
  std::uint32_t conn = 0;
  FrameKind kind = FrameKind::kData;
};

core::SegmentKind segment_kind(FrameKind kind) noexcept {
  return kind == FrameKind::kData ? core::SegmentKind::kData
                                  : core::SegmentKind::kAck;
}

}  // namespace

NicDispatch::NicDispatch(core::ShardedDemuxer& demuxer, Options options)
    : demuxer_(demuxer),
      options_(options),
      nic_steering_(demuxer.steering()),
      nic_table_(demuxer.shard_count(), demuxer.indirection().entries()) {
  sync_with_host();
}

void NicDispatch::sync_with_host() {
  nic_steering_ = demuxer_.steering();
  const auto host = demuxer_.indirection().raw();
  for (std::uint32_t i = 0; i < nic_table_.entries(); ++i) {
    nic_table_.set_entry(i, host[i]);
  }
}

NicDispatch::Result NicDispatch::run(const workloads::Workload& workload) {
  Result result;
  const std::uint32_t shards = demuxer_.shard_count();
  result.shard.resize(shards);

  // Per-run state. PCB pointers are owned by the demuxer; an entry goes
  // null at close. conn_home_ records the shard the stack *placed* the PCB
  // on — the redirector's routes map — which stays correct even after
  // steering drift, because PCBs never migrate.
  std::vector<core::Pcb*> conn_pcb(workload.trace.connections, nullptr);
  std::vector<std::uint32_t> conn_home(workload.trace.connections, 0);
  std::vector<std::uint32_t> conn_pending(workload.trace.connections, 0);
  std::vector<std::deque<PendingFrame>> inbox(shards);

  // One TCP machine per shard, as per-core stacks would have. The send
  // callback is the server's transmit path; segments it emits are counted
  // but not re-demultiplexed (they leave, not arrive).
  std::vector<tcp::TcpMachine> machines;
  machines.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    machines.emplace_back(
        [&result](core::Pcb&, const tcp::Emit&) { ++result.server_emits; });
  }

  auto note_skew = [&] {
    const std::size_t total = demuxer_.size();
    if (total == 0) return;
    const auto occ = demuxer_.occupancy();
    const std::size_t worst = *std::max_element(occ.begin(), occ.end());
    const double mean = static_cast<double>(total) /
                        static_cast<double>(occ.size());
    const double skew = static_cast<double>(worst) / mean;
    result.peak_occ_skew = std::max(result.peak_occ_skew, skew);
  };

  // Builds the frame's header from live PCB state (in-order semantics:
  // the client's next seq is exactly what we expect next) and runs the
  // owning shard's machine over it.
  auto process_frame = [&](std::uint32_t shard_idx, std::uint32_t conn,
                           FrameKind kind, core::Pcb& pcb) {
    const net::FlowKey& key = workload.keys[conn];
    net::TcpHeader seg;
    seg.src_port = key.foreign_port;
    seg.dst_port = key.local_port;
    seg.seq = pcb.rcv_nxt;
    seg.ack = pcb.snd_nxt;
    seg.set(net::TcpFlag::kAck);
    std::uint32_t payload = 0;
    if (kind == FrameKind::kData) payload = options_.payload_len;
    if (kind == FrameKind::kFin) seg.set(net::TcpFlag::kFin);
    machines[shard_idx].process(pcb, seg, payload);
  };

  auto drain_inbox = [&](std::uint32_t s) {
    while (!inbox[s].empty()) {
      const PendingFrame f = inbox[s].front();
      inbox[s].pop_front();
      ++result.shard[s].handoffs_in;
      if (conn_pending[f.conn] > 0) --conn_pending[f.conn];
      const net::FlowKey& key = workload.keys[f.conn];
      const core::LookupResult r =
          demuxer_.shard(s).lookup(key, segment_kind(f.kind));
      if (r.pcb == nullptr) {
        ++result.lost;  // routes map said s, but no PCB — a real loss
        continue;
      }
      process_frame(s, f.conn, f.kind, *r.pcb);
    }
  };
  auto drain_all = [&] {
    for (std::uint32_t s = 0; s < shards; ++s) drain_inbox(s);
  };
  // Ordering barrier: before any state-dependent step for `conn`, its
  // handed-off frames must land.
  auto drain_conn = [&](std::uint32_t conn) {
    if (conn_pending[conn] > 0) drain_inbox(conn_home[conn]);
  };

  // One inbound frame through the NIC: steer by the NIC's table, look up
  // on the steered shard, hand off to the owning shard on a miss.
  auto deliver = [&](std::uint32_t conn, FrameKind kind) {
    const net::FlowKey& key = workload.keys[conn];
    const std::uint32_t q = nic_queue_for(key);
    ++result.frames;
    ++result.shard[q].frames;
    if ((result.frames % options_.drain_interval) == 0) {
      drain_all();
      note_skew();
    }
    core::Pcb* pcb = conn_pcb[conn];
    if (pcb == nullptr) {
      ++result.lost;  // frame for a connection the trace already closed
      return;
    }
    const std::uint32_t dest = conn_home[conn];
    if (q == dest && conn_pending[conn] == 0) {
      const core::LookupResult r = demuxer_.shard(q).lookup(
          key, segment_kind(kind));
      if (r.pcb != nullptr) {
        process_frame(q, conn, kind, *r.pcb);
        return;
      }
      ++result.lost;  // resident shard lost its PCB — structural bug
      return;
    }
    // Mis-steered — or correctly steered but ordered behind this
    // connection's still-queued handoffs, which must not be overtaken.
    if (q != dest) ++result.missteers;
    if (inbox[dest].size() >= options_.handoff_capacity) {
      ++result.handoff_drops;  // backpressure: the frame is gone
      return;
    }
    inbox[dest].push_back(PendingFrame{conn, kind});
    ++conn_pending[conn];
    ++result.handoffs;
    const std::uint64_t depth = inbox[dest].size();
    result.max_handoff_depth = std::max(result.max_handoff_depth, depth);
    result.shard[dest].max_inbox_depth =
        std::max(result.shard[dest].max_inbox_depth, depth);
  };

  // Control plane: SYN accepted into the listen path. The stack (not the
  // NIC) places the PCB — on the shard the HOST steering homes the key to.
  auto accept = [&](std::uint32_t conn) -> bool {
    const net::FlowKey& key = workload.keys[conn];
    core::Pcb* pcb = demuxer_.insert(key);
    if (pcb == nullptr) {
      ++result.duplicate_inserts;
      return false;
    }
    const std::uint32_t home = demuxer_.home_shard(key);
    conn_pcb[conn] = pcb;
    conn_home[conn] = home;
    net::TcpHeader syn;
    syn.src_port = key.foreign_port;
    syn.dst_port = key.local_port;
    syn.seq = 0x40000000u + conn * 64000u;  // deterministic client ISN
    syn.set(net::TcpFlag::kSyn);
    machines[home].open_passive(*pcb, syn);
    return true;
  };

  // Pre-established connections (first trace event is not kOpen) come up
  // before replay, handshake included, without NIC frames — they existed
  // before the NIC started counting.
  {
    std::vector<bool> first_seen(workload.trace.connections, false);
    std::vector<bool> pre_established(workload.trace.connections, false);
    for (const TraceEvent& e : workload.trace.events) {
      if (!first_seen[e.conn]) {
        first_seen[e.conn] = true;
        pre_established[e.conn] = e.kind != TraceEventKind::kOpen;
      }
    }
    for (std::uint32_t c = 0; c < workload.trace.connections; ++c) {
      if (!pre_established[c]) continue;
      if (!accept(c)) continue;
      process_frame(conn_home[c], c, FrameKind::kAck, *conn_pcb[c]);
    }
  }

  for (const TraceEvent& e : workload.trace.events) {
    switch (e.kind) {
      case TraceEventKind::kOpen: {
        // SYN frame: steered by the NIC like any other frame (a wrong
        // table entry mis-steers handshakes too), but accepted by the
        // shared listen path regardless of where it landed.
        const net::FlowKey& key = workload.keys[e.conn];
        const std::uint32_t q = nic_queue_for(key);
        ++result.frames;
        ++result.shard[q].frames;
        if (!accept(e.conn)) break;
        ++result.opens;
        if (q != conn_home[e.conn]) ++result.missteers;
        // Handshake-completing ACK, via the normal steered data path.
        deliver(e.conn, FrameKind::kAck);
        break;
      }
      case TraceEventKind::kArrivalData:
        deliver(e.conn, FrameKind::kData);
        break;
      case TraceEventKind::kArrivalAck:
        deliver(e.conn, FrameKind::kAck);
        break;
      case TraceEventKind::kTransmit: {
        core::Pcb* pcb = conn_pcb[e.conn];
        if (pcb == nullptr) break;
        drain_conn(e.conn);
        ++result.transmits;
        machines[conn_home[e.conn]].send_data(*pcb, options_.payload_len);
        demuxer_.note_sent(pcb);
        break;
      }
      case TraceEventKind::kClose: {
        core::Pcb* pcb = conn_pcb[e.conn];
        if (pcb == nullptr) break;
        // Client FIN, then the server application's close, then the
        // client's ACK of our FIN — each step gated on the previous one
        // having actually been processed (force-drain the inbox in
        // between, as a real stack's ordering would).
        deliver(e.conn, FrameKind::kFin);
        drain_conn(e.conn);
        const std::uint32_t home = conn_home[e.conn];
        machines[home].close(*pcb);
        deliver(e.conn, FrameKind::kAck);
        drain_conn(e.conn);
        if (pcb->state != core::TcpState::kClosed) ++result.dirty_closes;
        conn_pcb[e.conn] = nullptr;
        demuxer_.erase(workload.keys[e.conn]);
        ++result.closes;
        break;
      }
    }
  }
  drain_all();
  note_skew();
  return result;
}

}  // namespace tcpdemux::sim
