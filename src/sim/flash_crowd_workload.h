// Flash-crowd workload: the population *ramps* instead of standing still.
//
// The paper analyzes a steady population; a real OLTP launch (or a
// region failing over) sees thousands of users connect over minutes. Each
// user joins at a random time in the ramp window (kOpen), then behaves as
// a TPC/A user. This stresses exactly what the fixed-H Sequent structure
// cannot do — re-size — and what the dynamic table (core/dynamic_hash)
// exists for.
#ifndef TCPDEMUX_SIM_FLASH_CROWD_WORKLOAD_H_
#define TCPDEMUX_SIM_FLASH_CROWD_WORKLOAD_H_

#include <cstdint>

#include "sim/trace.h"

namespace tcpdemux::sim {

struct FlashCrowdParams {
  std::uint32_t users = 2000;
  double ramp = 120.0;        ///< users join uniformly over [0, ramp)
  double duration = 240.0;    ///< total trace length, seconds
  double think_mean = 10.0;
  double think_cap_factor = 10.0;
  double response_time = 0.2;
  double rtt = 0.001;
  std::uint64_t seed = 42;
};

/// Generates the server-side trace: each user emits kOpen at its join
/// time, then transacts (closed loop) until the horizon.
[[nodiscard]] Trace generate_flash_crowd_trace(const FlashCrowdParams& params);

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_FLASH_CROWD_WORKLOAD_H_
