#include "sim/address_space.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "sim/rng.h"

namespace tcpdemux::sim {
namespace {

net::FlowKey make_key(const AddressSpaceParams& params, net::Ipv4Addr client,
                      std::uint16_t port) {
  return net::FlowKey{params.server_addr, params.server_port, client, port};
}

}  // namespace

std::vector<net::FlowKey> make_client_keys(const AddressSpaceParams& params) {
  if (params.clients == 0) {
    throw std::invalid_argument("address space: clients must be >= 1");
  }
  std::vector<net::FlowKey> keys;
  keys.reserve(params.clients);

  switch (params.pattern) {
    case ClientPattern::kSequentialHosts: {
      // 10.b.s.h with h in [2, 254]: one /24 per 253 clients, rolling into
      // the next /16 every 256 subnets.
      std::uint32_t subnet = 0;
      std::uint32_t host = 2;
      for (std::uint32_t i = 0; i < params.clients; ++i) {
        keys.push_back(make_key(
            params,
            net::Ipv4Addr(10, static_cast<std::uint8_t>(1 + subnet / 256),
                          static_cast<std::uint8_t>(subnet % 256),
                          static_cast<std::uint8_t>(host)),
            40000));
        if (++host > 254) {
          host = 2;
          ++subnet;
        }
      }
      break;
    }
    case ClientPattern::kConcentrators: {
      const std::uint32_t hosts = std::max(1u, params.concentrator_hosts);
      for (std::uint32_t i = 0; i < params.clients; ++i) {
        const std::uint32_t host = i % hosts;
        const std::uint16_t port =
            static_cast<std::uint16_t>(1024 + i / hosts);
        keys.push_back(make_key(
            params, net::Ipv4Addr(10, 2, 0, static_cast<std::uint8_t>(host + 2)),
            port));
      }
      break;
    }
    case ClientPattern::kRandom: {
      Rng rng(params.seed);
      std::unordered_set<net::FlowKey> seen;
      while (keys.size() < params.clients) {
        const auto addr = net::Ipv4Addr(
            static_cast<std::uint32_t>(rng.uniform_index(0xe0000000u)) |
            0x0a000000u);
        const auto port = static_cast<std::uint16_t>(
            1024 + rng.uniform_index(65536 - 1024));
        const net::FlowKey key = make_key(params, addr, port);
        if (seen.insert(key).second) keys.push_back(key);
      }
      break;
    }
    case ClientPattern::kAdversarialForModulo: {
      // foreign_addr + foreign_port is held constant, so the historical
      // BSD-modulo hash maps every client to one chain.
      const std::uint32_t base = net::Ipv4Addr(10, 3, 0, 0).value() + 70000;
      for (std::uint32_t i = 0; i < params.clients; ++i) {
        const std::uint16_t port = static_cast<std::uint16_t>(1024 + i);
        keys.push_back(
            make_key(params, net::Ipv4Addr(base - port), port));
      }
      break;
    }
  }
  return keys;
}

EphemeralPortAllocator::EphemeralPortAllocator(std::uint16_t lo,
                                               std::uint16_t hi)
    : lo_(lo), hi_(hi), next_fresh_(lo) {
  if (lo == 0 || hi < lo) {
    throw std::invalid_argument("port allocator: bad ephemeral range");
  }
  busy_.assign(capacity(), false);
}

std::uint16_t EphemeralPortAllocator::acquire() {
  std::uint16_t port = 0;
  if (next_fresh_ <= hi_) {
    port = static_cast<std::uint16_t>(next_fresh_++);
  } else if (!free_.empty()) {
    port = free_.front();
    free_.pop_front();
    ++reuses_;
  } else {
    throw std::runtime_error("port allocator: ephemeral range exhausted");
  }
  busy_[static_cast<std::size_t>(port - lo_)] = true;
  ++in_use_count_;
  return port;
}

void EphemeralPortAllocator::release(std::uint16_t port) {
  if (port < lo_ || port > hi_) {
    throw std::invalid_argument("port allocator: release outside range");
  }
  const auto idx = static_cast<std::size_t>(port - lo_);
  if (!busy_[idx]) {
    throw std::invalid_argument("port allocator: double release");
  }
  busy_[idx] = false;
  --in_use_count_;
  free_.push_back(port);
}

}  // namespace tcpdemux::sim
