#include "sim/tpca_workload.h"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.h"

namespace tcpdemux::sim {

Trace generate_tpca_trace(const TpcaWorkloadParams& params) {
  if (params.users == 0) {
    throw std::invalid_argument("TPC/A workload: users must be >= 1");
  }
  if (params.response_time < params.rtt) {
    throw std::invalid_argument(
        "TPC/A workload: response time must cover the round trip");
  }

  Rng rng(params.seed);
  Trace trace;
  trace.connections = params.users;

  const double half_rtt = 0.5 * params.rtt;
  const double server_processing = params.response_time - params.rtt;
  const double cap = params.think_cap_factor * params.think_mean;
  const double horizon = params.warmup + params.duration;

  const auto think = [&]() {
    return params.truncate_think
               ? rng.truncated_exponential(params.think_mean, cap)
               : rng.exponential(params.think_mean);
  };
  const auto emit = [&](double when, std::uint32_t conn,
                        TraceEventKind kind) {
    if (when >= params.warmup && when < horizon) {
      trace.events.push_back(TraceEvent{when - params.warmup, conn, kind});
    }
  };

  // Users are mutually independent, so each is generated with a private
  // sequential loop; the global sort below interleaves them. With churn
  // enabled, reconnections allocate fresh connection indices above the
  // initial population.
  std::uint32_t next_conn = params.users;
  const double epsilon = 1e-6;
  for (std::uint32_t user = 0; user < params.users; ++user) {
    std::uint32_t conn = user;
    double entry = think();  // randomizes phase; warmup absorbs transients
    while (entry < horizon) {
      const double query_arrival = entry + half_rtt;
      const double response_sent = query_arrival + server_processing;
      const double ack_arrival = query_arrival + params.response_time;
      emit(query_arrival, conn, TraceEventKind::kArrivalData);
      emit(query_arrival, conn, TraceEventKind::kTransmit);  // query's ack
      emit(response_sent, conn, TraceEventKind::kTransmit);  // response
      emit(ack_arrival, conn, TraceEventKind::kArrivalAck);

      const double next_think = think();
      entry = params.open_loop ? entry + next_think
                               : entry + params.response_time + next_think;

      const bool end_session =
          params.session_txns_mean > 0.0 &&
          rng.uniform() < 1.0 / params.session_txns_mean;
      if (end_session) {
        emit(ack_arrival + epsilon, conn, TraceEventKind::kClose);
        const double next_query = entry + half_rtt;
        if (next_query >= horizon) break;  // no further activity in window
        conn = next_conn++;
        emit(next_query - epsilon, conn, TraceEventKind::kOpen);
      }
    }
  }
  trace.connections = next_conn;

  trace.sort_by_time();
  return trace;
}

}  // namespace tcpdemux::sim
