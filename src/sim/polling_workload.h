// Point-of-sale polling workload: the move-to-front worst case (paper
// §3.2).
//
// "If the think times were deterministic (exactly 10 seconds always),
// Crowcroft's algorithm would look through all 2,000 PCBs on each
// transaction entry. One example of a system with this behavior is a
// central server polling its clients, as seen in many point-of-sale
// terminal applications."
//
// N terminals submit transactions in a fixed rotation: terminal k enters at
// phase k * (period / N) within every period. Between a terminal's
// consecutive transactions every other terminal has transacted exactly
// once, so under MTF its PCB has sunk to the tail — a full scan per lookup.
// Acknowledgements arrive R after each query, as in the TPC/A generator.
#ifndef TCPDEMUX_SIM_POLLING_WORKLOAD_H_
#define TCPDEMUX_SIM_POLLING_WORKLOAD_H_

#include <cstdint>

#include "sim/trace.h"

namespace tcpdemux::sim {

struct PollingWorkloadParams {
  std::uint32_t terminals = 2000;
  double period = 10.0;     ///< deterministic per-terminal think period, s
  double response_time = 0.2;
  double rtt = 0.001;
  double duration = 100.0;  ///< simulated seconds
};

[[nodiscard]] Trace generate_polling_trace(const PollingWorkloadParams& params);

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_POLLING_WORKLOAD_H_
