#include "sim/trace_io.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace tcpdemux::sim {
namespace {

std::optional<TraceEventKind> kind_from_string(std::string_view s) {
  if (s == "data") return TraceEventKind::kArrivalData;
  if (s == "ack") return TraceEventKind::kArrivalAck;
  if (s == "xmit") return TraceEventKind::kTransmit;
  if (s == "open") return TraceEventKind::kOpen;
  if (s == "close") return TraceEventKind::kClose;
  return std::nullopt;
}

}  // namespace

bool save_trace(std::ostream& os, const Trace& trace) {
  os << "tcpdemux-trace,v1," << trace.connections << '\n';
  char buf[64];
  for (const TraceEvent& e : trace.events) {
    // %.9g keeps microsecond structure without trailing noise.
    std::snprintf(buf, sizeof buf, "%.12g", e.time);
    os << buf << ',' << e.conn << ',' << to_string(e.kind) << '\n';
  }
  return static_cast<bool>(os);
}

std::optional<Trace> load_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  Trace trace;
  {
    const std::string_view header(line);
    constexpr std::string_view kMagic = "tcpdemux-trace,v1,";
    if (!header.starts_with(kMagic)) return std::nullopt;
    const std::string_view count = header.substr(kMagic.size());
    const auto [ptr, ec] = std::from_chars(
        count.data(), count.data() + count.size(), trace.connections);
    if (ec != std::errc{} || ptr != count.data() + count.size()) {
      return std::nullopt;
    }
  }

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::string_view row(line);
    const std::size_t c1 = row.find(',');
    if (c1 == std::string_view::npos) return std::nullopt;
    const std::size_t c2 = row.find(',', c1 + 1);
    if (c2 == std::string_view::npos) return std::nullopt;

    TraceEvent event;
    // std::from_chars for double is not universally available; strtod on a
    // bounded copy is.
    const std::string time_text(row.substr(0, c1));
    char* end = nullptr;
    event.time = std::strtod(time_text.c_str(), &end);
    if (end != time_text.c_str() + time_text.size()) return std::nullopt;

    const std::string_view conn_text = row.substr(c1 + 1, c2 - c1 - 1);
    const auto [ptr, ec] =
        std::from_chars(conn_text.data(),
                        conn_text.data() + conn_text.size(), event.conn);
    if (ec != std::errc{} || ptr != conn_text.data() + conn_text.size()) {
      return std::nullopt;
    }

    const auto kind = kind_from_string(row.substr(c2 + 1));
    if (!kind) return std::nullopt;
    event.kind = *kind;
    trace.events.push_back(event);
  }

  if (!trace.valid()) return std::nullopt;
  return trace;
}

}  // namespace tcpdemux::sim
