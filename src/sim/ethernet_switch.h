// A transparent learning bridge (IEEE 802.1D minus spanning tree): the LAN
// fabric between the simulated hosts.
//
// Frames enter on a port; the switch learns the source MAC's port, then
// forwards — to the learned port for known unicast destinations, flooding
// everywhere else (unknown unicast, broadcast, multicast). MAC table
// entries age out and the table is bounded.
#ifndef TCPDEMUX_SIM_ETHERNET_SWITCH_H_
#define TCPDEMUX_SIM_ETHERNET_SWITCH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "net/ethernet.h"

namespace tcpdemux::sim {

class EthernetSwitch {
 public:
  /// Delivers a frame out of a port (toward the attached host/link).
  using PortFn = std::function<void(std::vector<std::uint8_t> frame)>;

  struct Options {
    double mac_ageing = 300.0;   ///< seconds before a learned MAC expires
    std::size_t max_macs = 4096;
  };

  struct Stats {
    std::uint64_t forwarded = 0;  ///< known unicast, single egress
    std::uint64_t flooded = 0;    ///< unknown/broadcast, all-but-ingress
    std::uint64_t dropped = 0;    ///< unparseable or self-destined frames
  };

  EthernetSwitch() : EthernetSwitch(Options()) {}
  explicit EthernetSwitch(Options options) : options_(options) {}

  /// Attaches a port; returns its index.
  std::size_t add_port(PortFn egress);

  /// Accepts a frame arriving on `ingress_port` at time `now`.
  void receive(std::size_t ingress_port,
               std::span<const std::uint8_t> frame, double now);

  /// Ages out stale MAC entries; returns how many were dropped.
  std::size_t expire(double now);

  [[nodiscard]] std::size_t mac_table_size() const noexcept {
    return mac_table_.size();
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// The port a MAC was last learned on, or npos (test hook).
  [[nodiscard]] std::size_t port_of(const net::MacAddr& mac) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  struct MacEntry {
    std::size_t port = 0;
    double learned = 0.0;
  };

  void learn(const net::MacAddr& mac, std::size_t port, double now);

  Options options_;
  std::vector<PortFn> ports_;
  std::map<std::array<std::uint8_t, 6>, MacEntry> mac_table_;
  Stats stats_;
};

}  // namespace tcpdemux::sim

#endif  // TCPDEMUX_SIM_ETHERNET_SWITCH_H_
