#include "sim/workloads/pcap_workload.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/ethernet.h"
#include "net/packet.h"
#include "net/pcap.h"

namespace tcpdemux::sim::workloads {
namespace {

constexpr double kEpsilon = 1e-6;

struct TimedPacketView {
  double time = 0.0;
  net::Packet packet;
};

bool is_pure_ack(const net::TcpHeader& tcp, std::size_t payload_bytes) {
  return payload_bytes == 0 && tcp.has(net::TcpFlag::kAck) &&
         !tcp.has(net::TcpFlag::kSyn) && !tcp.has(net::TcpFlag::kFin) &&
         !tcp.has(net::TcpFlag::kRst);
}

}  // namespace

Workload make_pcap_workload(std::istream& is,
                            const PcapWorkloadParams& params,
                            PcapImportStats* stats) {
  net::PcapReader reader(is);
  if (!reader.ok()) {
    throw std::invalid_argument("pcap workload: not a readable pcap file");
  }
  const bool ethernet =
      reader.link_type() == net::PcapWriter::kLinkTypeEthernet;
  const std::vector<net::PcapRecord> records = reader.read_all();

  PcapImportStats local;
  PcapImportStats& st = stats != nullptr ? *stats : local;
  st.records = records.size();
  st.clean_eof = reader.ok();

  // Pass 1: parse everything; vote for the server port if none was given.
  std::vector<TimedPacketView> packets;
  packets.reserve(records.size());
  std::map<std::uint16_t, std::size_t> port_votes;
  for (const net::PcapRecord& record : records) {
    std::span<const std::uint8_t> datagram = record.bytes;
    if (ethernet) {
      const auto inner = net::ethernet_decapsulate_ipv4(record.bytes);
      if (!inner) {
        ++st.unparseable;
        continue;
      }
      datagram = *inner;
    }
    if (auto packet = net::Packet::parse(datagram)) {
      ++port_votes[packet->tcp.dst_port];
      packets.push_back(TimedPacketView{record.timestamp, std::move(*packet)});
    } else {
      ++st.unparseable;
    }
  }
  if (packets.empty()) {
    throw std::invalid_argument(
        "pcap workload: no parseable TCP/IPv4 packets");
  }

  std::uint16_t server_port = params.server_port;
  if (server_port == 0) {
    std::size_t best = 0;
    for (const auto& [port, votes] : port_votes) {
      if (votes > best) {
        best = votes;
        server_port = port;
      }
    }
  }
  st.server_port = server_port;

  // Pass 2: reconstruct the event stream. One FlowInstance per lifetime of
  // a 4-tuple; a SYN on a close-marked instance finalizes it and starts a
  // new connection on the same key.
  struct FlowInstance {
    std::uint32_t conn = 0;
    double last_time = 0.0;
    bool wants_close = false;
  };

  Workload w;
  w.name = params.path.empty() ? std::string("pcap")
                               : "pcap:file=" + params.path;
  std::unordered_map<net::FlowKey, FlowInstance> active;
  const double t0 = packets.front().time;

  const auto finalize = [&](FlowInstance& flow, double close_time) {
    w.trace.events.push_back(TraceEvent{std::max(close_time,
                                                 flow.last_time + kEpsilon),
                                        flow.conn, TraceEventKind::kClose});
  };

  for (const TimedPacketView& tp : packets) {
    const double t = std::max(0.0, tp.time - t0);
    const net::Packet& p = tp.packet;
    const bool to_server = p.tcp.dst_port == server_port;
    const bool from_server = p.tcp.src_port == server_port;
    if (!to_server && !from_server) {
      ++st.other_direction;
      continue;
    }
    const net::FlowKey key = to_server
                                 ? p.receiver_flow_key()
                                 : p.receiver_flow_key().reversed();
    const bool syn_only =
        p.tcp.has(net::TcpFlag::kSyn) && !p.tcp.has(net::TcpFlag::kAck);

    auto it = active.find(key);
    if (to_server && syn_only && it != active.end() &&
        it->second.wants_close) {
      // Tuple reuse: the previous connection on this 4-tuple ended; close
      // it just before the new SYN and start fresh.
      finalize(it->second, t - kEpsilon);
      active.erase(it);
      it = active.end();
    }
    if (it == active.end()) {
      if (!to_server) continue;  // server-side talk on an unknown flow
      FlowInstance flow;
      flow.conn = static_cast<std::uint32_t>(w.keys.size());
      flow.last_time = t;
      w.keys.push_back(key);
      it = active.emplace(key, flow).first;
      if (syn_only) {
        // Connection establishes mid-trace; the SYN itself is the open.
        w.trace.events.push_back(
            TraceEvent{t, flow.conn, TraceEventKind::kOpen});
      }
      // A non-SYN first packet means the flow predates the capture: no
      // event needed, replay pre-establishes it.
    }
    FlowInstance& flow = it->second;
    flow.last_time = std::max(flow.last_time, t);

    if (to_server) {
      if (!syn_only) {
        w.trace.events.push_back(TraceEvent{
            t, flow.conn,
            is_pure_ack(p.tcp, p.payload.size())
                ? TraceEventKind::kArrivalAck
                : TraceEventKind::kArrivalData});
      }
    } else {
      w.trace.events.push_back(
          TraceEvent{t, flow.conn, TraceEventKind::kTransmit});
    }
    if (p.tcp.has(net::TcpFlag::kFin) || p.tcp.has(net::TcpFlag::kRst)) {
      flow.wants_close = true;
    }
  }

  // Flows that FIN'd and never spoke again close after their last packet.
  for (auto& [key, flow] : active) {
    if (flow.wants_close) finalize(flow, flow.last_time + kEpsilon);
  }

  w.trace.connections = static_cast<std::uint32_t>(w.keys.size());
  w.trace.sort_by_time();
  return w;
}

Workload make_pcap_workload(const PcapWorkloadParams& params,
                            PcapImportStats* stats) {
  std::ifstream file(params.path, std::ios::binary);
  if (!file) {
    throw std::invalid_argument("pcap workload: cannot open " + params.path);
  }
  return make_pcap_workload(file, params, stats);
}

}  // namespace tcpdemux::sim::workloads
