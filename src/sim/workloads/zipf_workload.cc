#include "sim/workloads/zipf_workload.h"

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace tcpdemux::sim::workloads {

Workload generate_zipf_workload(const ZipfWorkloadParams& params) {
  if (params.flows == 0 || params.arrivals == 0 || params.duration <= 0.0) {
    throw std::invalid_argument("zipf workload: empty configuration");
  }
  if (params.ack_every == 0) {
    throw std::invalid_argument("zipf workload: ack_every must be >= 1");
  }

  Rng rng(params.seed);
  const ZipfSampler zipf(params.flows, params.s);

  Workload w;
  w.name = "zipf:flows=" + std::to_string(params.flows);
  w.trace.connections = params.flows;
  w.trace.events.reserve(params.arrivals + params.arrivals / params.ack_every);

  // Poisson arrivals at rate arrivals/duration; each picks its flow by
  // popularity rank. Rank r maps directly to conn r, so conn 0 is the
  // hottest flow — convenient for inspecting per-flow counts in tests.
  const double mean_gap =
      params.duration / static_cast<double>(params.arrivals);
  std::vector<std::uint32_t> since_ack(params.flows, 0);
  double t = 0.0;
  for (std::uint64_t i = 0; i < params.arrivals; ++i) {
    t += rng.exponential(mean_gap);
    const std::uint32_t conn = zipf.sample(rng);
    w.trace.events.push_back(
        TraceEvent{t, conn, TraceEventKind::kArrivalData});
    if (++since_ack[conn] == params.ack_every) {
      since_ack[conn] = 0;
      w.trace.events.push_back(
          TraceEvent{t, conn, TraceEventKind::kTransmit});
      w.trace.events.push_back(
          TraceEvent{t + params.rtt, conn, TraceEventKind::kArrivalAck});
    }
  }
  w.trace.sort_by_time();

  AddressSpaceParams ap;
  ap.clients = params.flows;
  ap.pattern = params.pattern;
  ap.seed = params.seed;
  w.keys = make_client_keys(ap);
  return w;
}

}  // namespace tcpdemux::sim::workloads
