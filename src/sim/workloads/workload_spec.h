// WorkloadSpec: one grammar for every scenario generator, mirroring the
// demuxer registry's spec strings so a scenario is fully named by a pair
// of strings ("zipf:flows=200000:s=1.1" x "flat:4096:crc32").
//
// Grammar:  <kind>[:<token>]...   token := <key>=<value> | <flag>
//
//   tpca    [users=N] [duration=S] [response=R] [rtt=D] [churn=M] [seed=X]
//           the paper's TPC/A population; churn=M enables geometric
//           session lengths of mean M transactions (fresh port each time)
//   zipf    [flows=N] [s=E] [arrivals=N] [duration=S] [ack_every=K]
//           [seed=X]       heavy-tailed flow popularity (Zipf exponent s)
//   trains  [conns=N] [len=L] [spacing=S] [gap=G] [ack_every=K]
//           [duration=S] [seed=X]    packet-train bulk transfer [JR86]
//   churn   [users=N] [session=M] [think=S] [ports=W] [duration=S]
//           [seed=X] [ephemeral|fresh]
//           short-lived connections; `ephemeral` (default) recycles each
//           host's W-port range so 4-tuples genuinely repeat, `fresh`
//           never reuses a port (the old dishonest behaviour, kept as an
//           A/B control)
//   natpop  [clients=N] [nats=G] [session=M] [think=S] [duration=S]
//           [seed=X]    client population behind G NAT gateways
//   mix     flood=P% [start=F] [base=<kind>] [seed=X] [...base tokens]
//           P percent flood arrivals blended over the base workload; all
//           unrecognized tokens forward to the base spec
//   pcap    file=PATH [port=N]    import a capture (see pcap_workload.h)
//
// Numbers accept plain integers/doubles; `flood` accepts a trailing '%'.
// Unknown kinds or malformed tokens fail parse_workload_spec (nullopt);
// semantically bad values make make_workload throw std::invalid_argument.
#ifndef TCPDEMUX_SIM_WORKLOADS_WORKLOAD_SPEC_H_
#define TCPDEMUX_SIM_WORKLOADS_WORKLOAD_SPEC_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/workloads/workload.h"

namespace tcpdemux::sim::workloads {

struct WorkloadSpec {
  std::string kind;
  /// key=value tokens keep their value; bare flags carry an empty value.
  std::vector<std::pair<std::string, std::string>> params;

  /// The value of `key`, or nullopt. Flags test via has().
  [[nodiscard]] std::optional<std::string_view> get(
      std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const;
};

/// Splits "<kind>:<tok>:<tok>..." — purely lexical; nullopt on an empty
/// kind, an empty token, or a token with an empty key ("=x").
[[nodiscard]] std::optional<WorkloadSpec> parse_workload_spec(
    std::string_view spec);

/// Known generator kinds, in matrix display order.
[[nodiscard]] std::vector<std::string_view> workload_kinds();

/// Instantiates the generator named by the spec. Throws
/// std::invalid_argument on unknown kinds, unknown/duplicate tokens, or
/// out-of-range values. Deterministic: equal spec strings produce
/// identical workloads.
[[nodiscard]] Workload make_workload(const WorkloadSpec& spec);

/// Parses and instantiates in one step (throws on parse failure too).
[[nodiscard]] Workload make_workload(std::string_view spec);

}  // namespace tcpdemux::sim::workloads

#endif  // TCPDEMUX_SIM_WORKLOADS_WORKLOAD_SPEC_H_
