// Workload: a named arrival trace bundled with the flow keys it
// demultiplexes on — the unit of the scenario matrix.
//
// The paper's sweep fixes one workload (TPC/A) and varies the algorithm;
// the scenario subsystem varies both. Every generator — synthetic or
// pcap-driven — produces this same shape, so `replay_trace(workload, ...)`
// can run any workload through any registered demuxer with telemetry
// capture and identical accounting.
#ifndef TCPDEMUX_SIM_WORKLOADS_WORKLOAD_H_
#define TCPDEMUX_SIM_WORKLOADS_WORKLOAD_H_

#include <string>
#include <vector>

#include "net/flow_key.h"
#include "sim/trace.h"

namespace tcpdemux::sim::workloads {

struct Workload {
  /// Canonical spec string ("zipf:flows=20000:s=1.1") or "pcap:file=...".
  std::string name;
  Trace trace;
  /// keys[conn] for every conn < trace.connections. Keys may repeat across
  /// connections that never overlap in time (ephemeral-port reuse); replay
  /// remains well-defined because the earlier connection closes first.
  std::vector<net::FlowKey> keys;
};

}  // namespace tcpdemux::sim::workloads

#endif  // TCPDEMUX_SIM_WORKLOADS_WORKLOAD_H_
