// Pcap-driven workload: replay a real capture through the same interface
// as every synthetic generator.
//
// The importer reconstructs the server-side event stream the trace-replay
// harness understands from raw captured packets: client→server segments
// become arrivals (data vs. pure-ack by payload and flags), server→client
// segments become kTransmit (the SR cache's send side), SYNs open
// connections mid-trace, and FIN/RST mark a flow for kClose after its last
// packet — deferred to the flow's end so stragglers (the FIN's own ack)
// never demultiplex against an already-erased PCB. A later SYN on a
// closed 4-tuple starts a *new* connection on the same key: real traces
// exhibit exactly the ephemeral-port reuse the churn generator
// synthesizes.
//
// Flows whose first packet is not a SYN were established before the
// capture started; they replay as pre-established, matching the paper's
// steady-state convention.
#ifndef TCPDEMUX_SIM_WORKLOADS_PCAP_WORKLOAD_H_
#define TCPDEMUX_SIM_WORKLOADS_PCAP_WORKLOAD_H_

#include <cstdint>
#include <istream>
#include <string>

#include "sim/workloads/workload.h"

namespace tcpdemux::sim::workloads {

struct PcapWorkloadParams {
  std::string path;              ///< used by the file-opening overload
  std::uint16_t server_port = 0; ///< 0 = busiest destination port in capture
};

struct PcapImportStats {
  std::size_t records = 0;         ///< pcap records read
  std::size_t unparseable = 0;     ///< non-IPv4/TCP or checksum-bad
  std::size_t other_direction = 0; ///< packets touching neither server side
  std::uint16_t server_port = 0;   ///< the port actually used
  bool clean_eof = true;           ///< false: salvaged a truncated capture
};

/// Imports from an open stream (testable without touching the
/// filesystem). Throws std::invalid_argument if the stream is not a pcap
/// file or contains no server-bound TCP traffic.
[[nodiscard]] Workload make_pcap_workload(std::istream& is,
                                          const PcapWorkloadParams& params,
                                          PcapImportStats* stats = nullptr);

/// Opens params.path and imports. Throws std::invalid_argument on open
/// failure too.
[[nodiscard]] Workload make_pcap_workload(const PcapWorkloadParams& params,
                                          PcapImportStats* stats = nullptr);

}  // namespace tcpdemux::sim::workloads

#endif  // TCPDEMUX_SIM_WORKLOADS_PCAP_WORKLOAD_H_
