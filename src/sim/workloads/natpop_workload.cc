#include "sim/workloads/natpop_workload.h"

#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/address_space.h"
#include "sim/rng.h"

namespace tcpdemux::sim::workloads {
namespace {

constexpr double kEpsilon = 1e-6;
constexpr std::uint16_t kPortsPerGateway = 512;
constexpr std::uint16_t kGatewayPortBase = 32768;

// One public IP with its shared port pool. Releases are deferred to their
// kClose event time so a binding can never be re-acquired by another user
// before the trace records the old connection as closed.
struct Gateway {
  explicit Gateway(net::Ipv4Addr addr_)
      : addr(addr_),
        ports(kGatewayPortBase, kGatewayPortBase + kPortsPerGateway - 1) {}

  std::uint16_t acquire(double now) {
    while (!pending.empty() && pending.top().first <= now) {
      ports.release(pending.top().second);
      pending.pop();
    }
    return ports.acquire();
  }
  void release_at(double when, std::uint16_t port) {
    pending.emplace(when, port);
  }

  net::Ipv4Addr addr;
  EphemeralPortAllocator ports;
  std::priority_queue<std::pair<double, std::uint16_t>,
                      std::vector<std::pair<double, std::uint16_t>>,
                      std::greater<>>
      pending;
};

}  // namespace

NatPopWorkload generate_natpop_workload(const NatPopParams& params) {
  if (params.clients == 0 || params.gateways == 0) {
    throw std::invalid_argument("natpop workload: empty configuration");
  }
  if (params.session_txns_mean < 1.0) {
    throw std::invalid_argument(
        "natpop workload: session_txns_mean must be >= 1");
  }
  if (params.response_time < params.rtt) {
    throw std::invalid_argument(
        "natpop workload: response time must cover the round trip");
  }
  // Every user holds at most one binding, so per-gateway concurrency is
  // bounded by its user share; refuse configurations that could exhaust.
  const std::uint32_t per_gateway =
      (params.clients + params.gateways - 1) / params.gateways;
  if (per_gateway > kPortsPerGateway) {
    throw std::invalid_argument(
        "natpop workload: more clients per gateway than the port pool");
  }

  Rng rng(params.seed);
  NatPopWorkload out;
  Workload& w = out.workload;
  w.name = "natpop:clients=" + std::to_string(params.clients);

  const net::Ipv4Addr server_addr(10, 0, 0, 1);
  constexpr std::uint16_t kServerPort = 1521;
  const double half_rtt = 0.5 * params.rtt;

  std::vector<Gateway> gateways;
  gateways.reserve(params.gateways);
  for (std::uint32_t g = 0; g < params.gateways; ++g) {
    // Public addresses: 198.51.100.0/24 style documentation space.
    gateways.emplace_back(net::Ipv4Addr(198, 51, static_cast<std::uint8_t>(
                                                     100 + g / 256),
                                        static_cast<std::uint8_t>(g % 256)));
  }

  struct UserState {
    std::uint32_t conn = 0;
    std::uint16_t port = 0;
    bool in_session = false;
  };
  std::vector<UserState> users(params.clients);

  // Global time order: pop the earliest user's next transaction, so the
  // shared allocators see acquires and releases in true event order.
  // Ties break on user index for determinism.
  using QEntry = std::pair<double, std::uint32_t>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> queue;
  for (std::uint32_t u = 0; u < params.clients; ++u) {
    queue.emplace(rng.exponential(params.think_mean), u);
  }

  const auto emit = [&](double when, std::uint32_t conn,
                        TraceEventKind kind) {
    w.trace.events.push_back(TraceEvent{when, conn, kind});
  };

  while (!queue.empty()) {
    const auto [entry, u] = queue.top();
    queue.pop();
    if (entry >= params.duration) continue;
    UserState& user = users[u];
    Gateway& gw = gateways[u % params.gateways];

    const double query_arrival = entry + half_rtt;
    if (!user.in_session) {
      user.port = gw.acquire(entry);
      user.conn = static_cast<std::uint32_t>(w.keys.size());
      user.in_session = true;
      w.keys.push_back(
          net::FlowKey{server_addr, kServerPort, gw.addr, user.port});
      ++out.sessions;
      emit(query_arrival - kEpsilon, user.conn, TraceEventKind::kOpen);
    }

    const double response_sent =
        query_arrival + (params.response_time - params.rtt);
    const double ack_arrival = query_arrival + params.response_time;
    emit(query_arrival, user.conn, TraceEventKind::kArrivalData);
    emit(query_arrival, user.conn, TraceEventKind::kTransmit);
    emit(response_sent, user.conn, TraceEventKind::kTransmit);
    emit(ack_arrival, user.conn, TraceEventKind::kArrivalAck);

    if (rng.uniform() < 1.0 / params.session_txns_mean) {
      const double close_time = ack_arrival + kEpsilon;
      emit(close_time, user.conn, TraceEventKind::kClose);
      gw.release_at(close_time, user.port);
      user.in_session = false;
    }
    // Next transaction (or next session's first transaction) after the
    // response and a think pause. Sessions shorter than the think time
    // close before the next pop, so the deferred release has matured by
    // the time the port could be re-acquired.
    const double next_entry =
        std::max(entry + params.response_time + rng.exponential(
                                                    params.think_mean),
                 ack_arrival + 2 * kEpsilon);
    if (next_entry < params.duration) queue.emplace(next_entry, u);
  }

  for (const Gateway& gw : gateways) out.binding_reuses += gw.ports.reuses();

  w.trace.connections = static_cast<std::uint32_t>(w.keys.size());
  w.trace.sort_by_time();
  return out;
}

}  // namespace tcpdemux::sim::workloads
