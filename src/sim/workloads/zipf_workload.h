// Heavy-tailed (Zipf) flow-popularity workload.
//
// The TPC/A model gives every connection the same arrival rate; measured
// traffic does not — a few flows carry most packets and a long tail
// carries almost none (Jain's locality study, DEC-TR-592). This is the
// regime where small caches shine: the BSD 1-entry and SR 2-entry caches
// convert flow concentration directly into hit rate, while hashed tables
// gain nothing from it. The generator draws each arrival's flow from a
// bounded Zipf(s) distribution over `flows` ranks, with Poisson arrival
// times, so the empirical rank-frequency curve has slope -s on log-log
// axes (the property tests verify exactly that).
#ifndef TCPDEMUX_SIM_WORKLOADS_ZIPF_WORKLOAD_H_
#define TCPDEMUX_SIM_WORKLOADS_ZIPF_WORKLOAD_H_

#include <cstdint>

#include "sim/address_space.h"
#include "sim/workloads/workload.h"

namespace tcpdemux::sim::workloads {

struct ZipfWorkloadParams {
  std::uint32_t flows = 20000;     ///< live connections (all pre-established)
  double s = 1.1;                  ///< Zipf exponent; ~1.1 is the web regime
  std::uint64_t arrivals = 200000; ///< data arrivals to generate
  double duration = 60.0;          ///< seconds the arrivals span (Poisson)
  /// Every `ack_every`-th data segment on a flow is answered: the server
  /// transmits a response (kTransmit — the SR cache's send side observes
  /// it) and the client's ack arrives one RTT later (kArrivalAck).
  std::uint32_t ack_every = 4;
  double rtt = 0.001;
  ClientPattern pattern = ClientPattern::kRandom;
  std::uint64_t seed = 42;
};

[[nodiscard]] Workload generate_zipf_workload(const ZipfWorkloadParams& params);

}  // namespace tcpdemux::sim::workloads

#endif  // TCPDEMUX_SIM_WORKLOADS_ZIPF_WORKLOAD_H_
