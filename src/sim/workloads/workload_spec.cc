#include "sim/workloads/workload_spec.h"

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "sim/address_space.h"
#include "sim/bulk_workload.h"
#include "sim/tpca_workload.h"
#include "sim/workloads/churn_workload.h"
#include "sim/workloads/mix_workload.h"
#include "sim/workloads/natpop_workload.h"
#include "sim/workloads/pcap_workload.h"
#include "sim/workloads/zipf_workload.h"

namespace tcpdemux::sim::workloads {
namespace {

[[noreturn]] void fail(std::string_view kind, const std::string& what) {
  throw std::invalid_argument("workload spec '" + std::string(kind) +
                              "': " + what);
}

/// Integers accept k/m magnitude suffixes ("200k" == 200000) so matrix
/// specs read like the shorthand people actually type.
std::uint64_t parse_u64(std::string_view kind, std::string_view key,
                        std::string_view value) {
  std::uint64_t scale = 1;
  if (!value.empty()) {
    const char suffix = value.back();
    if (suffix == 'k' || suffix == 'K') scale = 1000;
    if (suffix == 'm' || suffix == 'M') scale = 1000000;
    if (scale != 1) value.remove_suffix(1);
  }
  std::uint64_t out = 0;
  if (value.empty()) fail(kind, std::string(key) + " needs a number");
  for (const char c : value) {
    if (c < '0' || c > '9') {
      fail(kind, std::string(key) + "=" + std::string(value) +
                     " is not an integer");
    }
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return out * scale;
}

std::uint32_t parse_u32(std::string_view kind, std::string_view key,
                        std::string_view value) {
  const std::uint64_t v = parse_u64(kind, key, value);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    fail(kind, std::string(key) + " out of range");
  }
  return static_cast<std::uint32_t>(v);
}

std::uint16_t parse_u16(std::string_view kind, std::string_view key,
                        std::string_view value) {
  const std::uint64_t v = parse_u64(kind, key, value);
  if (v > std::numeric_limits<std::uint16_t>::max()) {
    fail(kind, std::string(key) + " out of range");
  }
  return static_cast<std::uint16_t>(v);
}

double parse_double(std::string_view kind, std::string_view key,
                    std::string_view value) {
  const std::string s(value);
  std::size_t used = 0;
  double out = 0.0;
  try {
    out = std::stod(s, &used);
  } catch (const std::exception&) {
    fail(kind, std::string(key) + "=" + s + " is not a number");
  }
  if (used != s.size()) {
    fail(kind, std::string(key) + "=" + s + " is not a number");
  }
  return out;
}

/// "5%" -> 0.05, "0.05" -> 0.05.
double parse_fraction(std::string_view kind, std::string_view key,
                      std::string_view value) {
  if (!value.empty() && value.back() == '%') {
    value.remove_suffix(1);
    return parse_double(kind, key, value) / 100.0;
  }
  return parse_double(kind, key, value);
}

/// Consumes a spec's tokens one key at a time; anything left when the
/// generator is done is either an error or (for mix) the base's business.
class TokenReader {
 public:
  explicit TokenReader(const WorkloadSpec& spec)
      : spec_(spec), used_(spec.params.size(), false) {}

  std::optional<std::string_view> take(std::string_view key) {
    std::optional<std::string_view> found;
    for (std::size_t i = 0; i < spec_.params.size(); ++i) {
      if (spec_.params[i].first != key) continue;
      if (found) fail(spec_.kind, "duplicate token '" + std::string(key) + "'");
      found = spec_.params[i].second;
      used_[i] = true;
    }
    return found;
  }

  bool take_flag(std::string_view key) {
    const auto value = take(key);
    if (value && !value->empty()) {
      fail(spec_.kind, "'" + std::string(key) + "' is a flag, not key=value");
    }
    return value.has_value();
  }

  /// Throws if any token was never consumed.
  void finish() const {
    for (std::size_t i = 0; i < spec_.params.size(); ++i) {
      if (!used_[i]) {
        fail(spec_.kind, "unknown token '" + spec_.params[i].first + "'");
      }
    }
  }

  /// The unconsumed tokens, in order (mix forwards these to its base).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> leftovers()
      const {
    std::vector<std::pair<std::string, std::string>> out;
    for (std::size_t i = 0; i < spec_.params.size(); ++i) {
      if (!used_[i]) out.push_back(spec_.params[i]);
    }
    return out;
  }

 private:
  const WorkloadSpec& spec_;
  std::vector<bool> used_;
};

/// Canonical display name: the spec string that reproduces this workload.
std::string spec_string(const WorkloadSpec& spec) {
  std::string out = spec.kind;
  for (const auto& [key, value] : spec.params) {
    out += ':';
    out += key;
    if (!value.empty()) {
      out += '=';
      out += value;
    }
  }
  return out;
}

Workload make_tpca(const WorkloadSpec& spec) {
  TokenReader tokens(spec);
  TpcaWorkloadParams params;
  params.duration = 60.0;  // matrix-friendly default; spec can override
  params.warmup = 5.0;
  if (auto v = tokens.take("users")) params.users = parse_u32("tpca", "users", *v);
  if (auto v = tokens.take("duration")) {
    params.duration = parse_double("tpca", "duration", *v);
  }
  if (auto v = tokens.take("think")) {
    params.think_mean = parse_double("tpca", "think", *v);
  }
  if (auto v = tokens.take("response")) {
    params.response_time = parse_double("tpca", "response", *v);
  }
  if (auto v = tokens.take("rtt")) params.rtt = parse_double("tpca", "rtt", *v);
  if (auto v = tokens.take("churn")) {
    params.session_txns_mean = parse_double("tpca", "churn", *v);
  }
  if (auto v = tokens.take("seed")) params.seed = parse_u64("tpca", "seed", *v);
  tokens.finish();

  Workload w;
  w.trace = generate_tpca_trace(params);
  AddressSpaceParams addr;
  addr.clients = w.trace.connections;
  addr.seed = params.seed;
  w.keys = make_client_keys(addr);
  return w;
}

Workload make_zipf(const WorkloadSpec& spec) {
  TokenReader tokens(spec);
  ZipfWorkloadParams params;
  if (auto v = tokens.take("flows")) {
    params.flows = parse_u32("zipf", "flows", *v);
  }
  if (auto v = tokens.take("s")) params.s = parse_double("zipf", "s", *v);
  if (auto v = tokens.take("arrivals")) {
    params.arrivals = parse_u64("zipf", "arrivals", *v);
  }
  if (auto v = tokens.take("duration")) {
    params.duration = parse_double("zipf", "duration", *v);
  }
  if (auto v = tokens.take("ack_every")) {
    params.ack_every = parse_u32("zipf", "ack_every", *v);
  }
  if (auto v = tokens.take("seed")) params.seed = parse_u64("zipf", "seed", *v);
  tokens.finish();
  return generate_zipf_workload(params);
}

Workload make_trains(const WorkloadSpec& spec) {
  TokenReader tokens(spec);
  BulkWorkloadParams params;
  if (auto v = tokens.take("conns")) {
    params.connections = parse_u32("trains", "conns", *v);
  }
  if (auto v = tokens.take("len")) {
    params.train_length = parse_u32("trains", "len", *v);
  }
  if (auto v = tokens.take("spacing")) {
    params.segment_spacing = parse_double("trains", "spacing", *v);
  }
  if (auto v = tokens.take("gap")) {
    params.train_gap_mean = parse_double("trains", "gap", *v);
  }
  if (auto v = tokens.take("ack_every")) {
    params.segments_per_ack = parse_u32("trains", "ack_every", *v);
  }
  if (auto v = tokens.take("duration")) {
    params.duration = parse_double("trains", "duration", *v);
  }
  if (auto v = tokens.take("seed")) {
    params.seed = parse_u64("trains", "seed", *v);
  }
  tokens.finish();

  Workload w;
  w.trace = generate_bulk_trace(params);
  AddressSpaceParams addr;
  addr.clients = w.trace.connections;
  addr.seed = params.seed;
  w.keys = make_client_keys(addr);
  return w;
}

Workload make_churn(const WorkloadSpec& spec) {
  TokenReader tokens(spec);
  ChurnWorkloadParams params;
  if (auto v = tokens.take("users")) {
    params.users = parse_u32("churn", "users", *v);
  }
  if (auto v = tokens.take("session")) {
    params.session_txns_mean = parse_double("churn", "session", *v);
  }
  if (auto v = tokens.take("think")) {
    params.think_mean = parse_double("churn", "think", *v);
  }
  if (auto v = tokens.take("ports")) {
    params.port_range = parse_u16("churn", "ports", *v);
  }
  if (auto v = tokens.take("duration")) {
    params.duration = parse_double("churn", "duration", *v);
  }
  if (auto v = tokens.take("seed")) {
    params.seed = parse_u64("churn", "seed", *v);
  }
  const bool ephemeral = tokens.take_flag("ephemeral");
  const bool fresh = tokens.take_flag("fresh");
  if (ephemeral && fresh) {
    fail("churn", "'ephemeral' and 'fresh' are mutually exclusive");
  }
  params.ephemeral_reuse = !fresh;
  tokens.finish();
  return generate_churn_workload(params).workload;
}

Workload make_natpop(const WorkloadSpec& spec) {
  TokenReader tokens(spec);
  NatPopParams params;
  if (auto v = tokens.take("clients")) {
    params.clients = parse_u32("natpop", "clients", *v);
  }
  if (auto v = tokens.take("nats")) {
    params.gateways = parse_u32("natpop", "nats", *v);
  }
  if (auto v = tokens.take("session")) {
    params.session_txns_mean = parse_double("natpop", "session", *v);
  }
  if (auto v = tokens.take("think")) {
    params.think_mean = parse_double("natpop", "think", *v);
  }
  if (auto v = tokens.take("duration")) {
    params.duration = parse_double("natpop", "duration", *v);
  }
  if (auto v = tokens.take("seed")) {
    params.seed = parse_u64("natpop", "seed", *v);
  }
  tokens.finish();
  return generate_natpop_workload(params).workload;
}

Workload make_mix(const WorkloadSpec& spec) {
  TokenReader tokens(spec);
  MixWorkloadParams params;
  if (auto v = tokens.take("flood")) {
    params.flood_fraction = parse_fraction("mix", "flood", *v);
  }
  if (auto v = tokens.take("start")) {
    params.start_fraction = parse_double("mix", "start", *v);
  }
  if (auto v = tokens.take("per_conn")) {
    params.arrivals_per_conn = parse_u32("mix", "per_conn", *v);
  }
  if (auto v = tokens.take("seed")) params.seed = parse_u64("mix", "seed", *v);

  WorkloadSpec base;
  base.kind = "tpca";
  if (auto v = tokens.take("base")) base.kind = std::string(*v);
  if (base.kind == "mix") fail("mix", "base=mix would recurse");
  base.params = tokens.leftovers();  // everything else belongs to the base

  const Workload base_workload = make_workload(base);
  return mix_flood_over(base_workload, params).workload;
}

Workload make_pcap(const WorkloadSpec& spec) {
  TokenReader tokens(spec);
  PcapWorkloadParams params;
  if (auto v = tokens.take("file")) {
    params.path = std::string(*v);
  } else {
    fail("pcap", "requires file=PATH");
  }
  if (auto v = tokens.take("port")) {
    params.server_port = parse_u16("pcap", "port", *v);
  }
  tokens.finish();
  return make_pcap_workload(params);
}

}  // namespace

std::optional<std::string_view> WorkloadSpec::get(
    std::string_view key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return std::string_view(v);
  }
  return std::nullopt;
}

bool WorkloadSpec::has(std::string_view key) const {
  return get(key).has_value();
}

std::optional<WorkloadSpec> parse_workload_spec(std::string_view spec) {
  WorkloadSpec out;
  std::size_t start = 0;
  bool first = true;
  while (start <= spec.size()) {
    std::size_t end = spec.find(':', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view token = spec.substr(start, end - start);
    if (token.empty()) return std::nullopt;
    if (first) {
      if (token.find('=') != std::string_view::npos) return std::nullopt;
      out.kind = std::string(token);
      first = false;
    } else {
      const std::size_t eq = token.find('=');
      if (eq == 0) return std::nullopt;  // "=value" has no key
      if (eq == std::string_view::npos) {
        out.params.emplace_back(std::string(token), std::string());
      } else {
        out.params.emplace_back(std::string(token.substr(0, eq)),
                                std::string(token.substr(eq + 1)));
      }
    }
    if (end == spec.size()) break;
    start = end + 1;
  }
  if (out.kind.empty()) return std::nullopt;
  return out;
}

std::vector<std::string_view> workload_kinds() {
  return {"tpca", "zipf", "trains", "churn", "natpop", "mix", "pcap"};
}

Workload make_workload(const WorkloadSpec& spec) {
  Workload w;
  if (spec.kind == "tpca") {
    w = make_tpca(spec);
  } else if (spec.kind == "zipf") {
    w = make_zipf(spec);
  } else if (spec.kind == "trains") {
    w = make_trains(spec);
  } else if (spec.kind == "churn") {
    w = make_churn(spec);
  } else if (spec.kind == "natpop") {
    w = make_natpop(spec);
  } else if (spec.kind == "mix") {
    w = make_mix(spec);
  } else if (spec.kind == "pcap") {
    w = make_pcap(spec);
  } else {
    fail(spec.kind, "unknown workload kind");
  }
  w.name = spec_string(spec);
  return w;
}

Workload make_workload(std::string_view spec) {
  const auto parsed = parse_workload_spec(spec);
  if (!parsed) {
    throw std::invalid_argument("workload spec '" + std::string(spec) +
                                "': malformed");
  }
  return make_workload(*parsed);
}

}  // namespace tcpdemux::sim::workloads
