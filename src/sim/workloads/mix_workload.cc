#include "sim/workloads/mix_workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "sim/rng.h"

namespace tcpdemux::sim::workloads {

MixWorkload mix_flood_over(const Workload& base,
                           const MixWorkloadParams& params) {
  if (params.flood_fraction < 0.0 || params.flood_fraction >= 1.0) {
    throw std::invalid_argument("mix workload: flood fraction not in [0, 1)");
  }
  if (params.arrivals_per_conn == 0) {
    throw std::invalid_argument("mix workload: arrivals_per_conn must be >= 1");
  }
  if (base.trace.events.empty()) {
    throw std::invalid_argument("mix workload: base trace is empty");
  }
  if (base.trace.connections == 0 ||
      base.keys.size() < base.trace.connections) {
    throw std::invalid_argument("mix workload: base is missing flow keys");
  }

  MixWorkload out;
  out.benign_conns = base.trace.connections;
  Workload& w = out.workload;
  w.name = "mix:base=" + base.name;
  w.trace = base.trace;
  w.keys.assign(base.keys.begin(),
                base.keys.begin() + base.trace.connections);

  // flood/(base + flood) = fraction  =>  flood = base * f / (1 - f).
  const double base_arrivals = static_cast<double>(base.trace.arrivals());
  const auto flood_arrivals = static_cast<std::uint64_t>(std::llround(
      base_arrivals * params.flood_fraction / (1.0 - params.flood_fraction)));
  out.flood_conns = static_cast<std::uint32_t>(
      (flood_arrivals + params.arrivals_per_conn - 1) /
      params.arrivals_per_conn);
  if (out.flood_conns == 0) {
    w.trace.connections = static_cast<std::uint32_t>(w.keys.size());
    return out;
  }

  const double horizon = base.trace.events.back().time;
  const double start = params.start_fraction * horizon;

  // The server's own key half comes from the base so flood segments hit
  // the same listening endpoint. Copied, not referenced: the push_back
  // below reallocates w.keys.
  const net::FlowKey sample = w.keys.front();
  std::unordered_set<net::FlowKey> taken(w.keys.begin(), w.keys.end());

  Rng rng(params.seed);
  Trace flood;
  flood.connections = out.flood_conns;
  for (std::uint32_t c = 0; c < out.flood_conns; ++c) {
    net::FlowKey key;
    do {
      // 172.16/12 spoofed sources, random ephemeral ports.
      const auto addr = net::Ipv4Addr(
          0xac100000u |
          static_cast<std::uint32_t>(rng.uniform_index(1u << 20)));
      const auto port =
          static_cast<std::uint16_t>(1024 + rng.uniform_index(65536 - 1024));
      key = net::FlowKey{sample.local_addr, sample.local_port, addr, port};
    } while (!taken.insert(key).second);
    w.keys.push_back(key);

    const double open_time = rng.uniform(start, horizon);
    flood.events.push_back(
        TraceEvent{open_time, c, TraceEventKind::kOpen});
    for (std::uint32_t a = 0;
         a < params.arrivals_per_conn && out.flood_arrivals < flood_arrivals;
         ++a) {
      // SYN retransmissions trail the open at ~1 ms spacing.
      flood.events.push_back(TraceEvent{open_time + 1e-3 * (a + 1), c,
                                        TraceEventKind::kArrivalData});
      ++out.flood_arrivals;
    }
  }
  flood.sort_by_time();

  w.trace.merge(flood);
  return out;
}

}  // namespace tcpdemux::sim::workloads
