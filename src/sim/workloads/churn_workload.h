// Short-lived-connection churn with honest ephemeral-port reuse.
//
// The TPC/A churn knob (tpca_workload session_txns_mean) reconnects every
// session on a never-before-seen port, so the demultiplexer only ever sees
// fresh 4-tuples. Real clients cycle a finite ephemeral range: once it
// wraps, a reconnecting client presents a tuple the table held moments ago
// — the sequence (close → SYN on same tuple → insert) that exercises the
// paper's wildcard-listen → exact-PCB promotion path and every cache's
// stale-entry invalidation. Each user is one client host with its own
// EphemeralPortAllocator; `port_range` bounds the per-host range so
// realistic traces actually wrap (set `ephemeral_reuse = false` for the
// old fresh-port-forever behaviour as an A/B control).
#ifndef TCPDEMUX_SIM_WORKLOADS_CHURN_WORKLOAD_H_
#define TCPDEMUX_SIM_WORKLOADS_CHURN_WORKLOAD_H_

#include <cstdint>

#include "sim/workloads/workload.h"

namespace tcpdemux::sim::workloads {

struct ChurnWorkloadParams {
  std::uint32_t users = 1000;       ///< client hosts, one connection at a time
  double session_txns_mean = 4.0;   ///< geometric session length, transactions
  double think_mean = 1.0;          ///< seconds between transactions
  double response_time = 0.05;
  double rtt = 0.001;
  double duration = 120.0;          ///< simulated seconds
  bool ephemeral_reuse = true;      ///< false = every session a fresh port
  std::uint16_t port_range = 16;    ///< per-host ephemeral range width
  std::uint64_t seed = 42;
};

struct ChurnWorkload {
  Workload workload;
  std::uint64_t sessions = 0;    ///< total sessions (== connections)
  std::uint64_t port_reuses = 0; ///< acquires served by a recycled port
  std::uint64_t key_reuses = 0;  ///< connections whose 4-tuple appeared before
};

[[nodiscard]] ChurnWorkload generate_churn_workload(
    const ChurnWorkloadParams& params);

}  // namespace tcpdemux::sim::workloads

#endif  // TCPDEMUX_SIM_WORKLOADS_CHURN_WORKLOAD_H_
