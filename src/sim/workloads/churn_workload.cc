#include "sim/workloads/churn_workload.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/address_space.h"
#include "sim/rng.h"

namespace tcpdemux::sim::workloads {
namespace {

constexpr double kEpsilon = 1e-6;
constexpr std::uint16_t kPortBase = 40000;

// Same host enumeration as make_client_keys' kSequentialHosts: 10.b.s.h
// with h in [2, 254], one /24 per 253 clients.
net::Ipv4Addr host_of(std::uint32_t user) {
  const std::uint32_t subnet = user / 253;
  const std::uint32_t host = 2 + user % 253;
  return net::Ipv4Addr(10, static_cast<std::uint8_t>(1 + subnet / 256),
                       static_cast<std::uint8_t>(subnet % 256),
                       static_cast<std::uint8_t>(host));
}

}  // namespace

ChurnWorkload generate_churn_workload(const ChurnWorkloadParams& params) {
  if (params.users == 0) {
    throw std::invalid_argument("churn workload: users must be >= 1");
  }
  if (params.session_txns_mean < 1.0) {
    throw std::invalid_argument(
        "churn workload: session_txns_mean must be >= 1");
  }
  if (params.port_range == 0) {
    throw std::invalid_argument("churn workload: port_range must be >= 1");
  }
  if (params.response_time < params.rtt) {
    throw std::invalid_argument(
        "churn workload: response time must cover the round trip");
  }

  Rng rng(params.seed);
  ChurnWorkload out;
  Workload& w = out.workload;
  w.name = "churn:users=" + std::to_string(params.users);

  const net::Ipv4Addr server_addr(10, 0, 0, 1);
  constexpr std::uint16_t kServerPort = 1521;
  const double half_rtt = 0.5 * params.rtt;

  std::unordered_set<net::FlowKey> ever_seen;
  const auto think = [&] { return rng.exponential(params.think_mean); };
  const auto emit = [&](double when, std::uint32_t conn,
                        TraceEventKind kind) {
    w.trace.events.push_back(TraceEvent{when, conn, kind});
  };

  // Users are independent hosts, each with a private port allocator, so a
  // per-user sequential loop keeps every allocator's acquire/release
  // sequence in that host's own time order; the global sort interleaves
  // the hosts afterwards.
  for (std::uint32_t user = 0; user < params.users; ++user) {
    // Fresh-port mode keeps the whole unprivileged range, which no
    // realistic trace wraps; reuse mode narrows it so wrapping happens.
    EphemeralPortAllocator ports =
        params.ephemeral_reuse
            ? EphemeralPortAllocator(
                  kPortBase,
                  static_cast<std::uint16_t>(kPortBase + params.port_range - 1))
            : EphemeralPortAllocator(1024, 65535);
    const net::Ipv4Addr client = host_of(user);

    const auto open_session = [&](double /*when*/) {
      const std::uint16_t port = ports.acquire();
      const net::FlowKey key{server_addr, kServerPort, client, port};
      if (!ever_seen.insert(key).second) ++out.key_reuses;
      w.keys.push_back(key);
      ++out.sessions;
      return std::pair{static_cast<std::uint32_t>(w.keys.size() - 1), port};
    };

    double entry = think();  // randomizes phase across users
    auto [conn, port] = open_session(0.0);  // first session pre-established
    while (entry < params.duration) {
      const double query_arrival = entry + half_rtt;
      const double response_sent =
          query_arrival + (params.response_time - params.rtt);
      const double ack_arrival = query_arrival + params.response_time;
      emit(query_arrival, conn, TraceEventKind::kArrivalData);
      emit(query_arrival, conn, TraceEventKind::kTransmit);
      emit(response_sent, conn, TraceEventKind::kTransmit);
      emit(ack_arrival, conn, TraceEventKind::kArrivalAck);

      entry += params.response_time + think();  // closed loop

      if (rng.uniform() < 1.0 / params.session_txns_mean) {
        const double close_time = ack_arrival + kEpsilon;
        emit(close_time, conn, TraceEventKind::kClose);
        ports.release(port);
        // A pathologically tiny think time could start the next session
        // before this one's close; shift the whole session, not just its
        // open, or the first arrival would sort ahead of the open and the
        // conn would replay as pre-established (a duplicate key at t=0).
        entry = std::max(entry, close_time + 2 * kEpsilon - half_rtt);
        const double next_query = entry + half_rtt;
        if (next_query >= params.duration) break;
        std::tie(conn, port) = open_session(next_query);
        emit(next_query - kEpsilon, conn, TraceEventKind::kOpen);
      }
    }
    out.port_reuses += ports.reuses();
  }

  w.trace.connections = static_cast<std::uint32_t>(w.keys.size());
  w.trace.sort_by_time();
  return out;
}

}  // namespace tcpdemux::sim::workloads
