// Mixed workload: a SYN-flood riding on top of any benign base workload.
//
// Real attacks arrive *blended*: a mostly-benign packet stream with a few
// percent of flood traffic opening embryonic connections that never
// complete. The interesting question for each demuxer is collateral
// damage — how much the benign flows' lookup cost degrades as the table
// fills with junk — which requires the flood and the base traffic to share
// one table and one interleaved arrival order, not separate runs.
// `mix_flood_over` takes any generated (or pcap-imported) Workload and
// injects flood connections: each opens mid-trace (kOpen), receives a
// couple of segments, and is never closed. Flood keys live in 172.16/12 so
// they cannot collide with the synthetic 10/8 client space (and are
// checked against the base keys regardless, for pcap bases).
#ifndef TCPDEMUX_SIM_WORKLOADS_MIX_WORKLOAD_H_
#define TCPDEMUX_SIM_WORKLOADS_MIX_WORKLOAD_H_

#include <cstdint>

#include "sim/workloads/workload.h"

namespace tcpdemux::sim::workloads {

struct MixWorkloadParams {
  /// Flood share of *total* arrivals, in [0, 1). 0.05 means 1 in 20
  /// arriving segments belongs to the flood.
  double flood_fraction = 0.05;
  /// Flood opens are spread uniformly over [start_fraction * T, T], where
  /// T is the base trace's time horizon.
  double start_fraction = 0.2;
  std::uint32_t arrivals_per_conn = 2;  ///< SYN + one retransmission
  std::uint64_t seed = 4242;
};

struct MixWorkload {
  Workload workload;
  std::uint32_t benign_conns = 0;  ///< keys[0..benign_conns) are the base's
  std::uint32_t flood_conns = 0;
  std::uint64_t flood_arrivals = 0;
};

/// Builds the blend. The base's events and keys are preserved verbatim
/// (flood connections get the indices above `base.trace.connections`).
[[nodiscard]] MixWorkload mix_flood_over(const Workload& base,
                                         const MixWorkloadParams& params);

}  // namespace tcpdemux::sim::workloads

#endif  // TCPDEMUX_SIM_WORKLOADS_MIX_WORKLOAD_H_
