// NAT'd client population: many users multiplexed onto a few public IPs.
//
// Behind carrier-grade NAT the server sees thousands of users as a handful
// of gateway addresses whose *ports* carry all the distinguishing entropy
// — the modern version of the paper's terminal-concentrator population,
// and the worst case for hash functions that underweight port bits. Every
// gateway owns one shared EphemeralPortAllocator: concurrent users drain
// the range together and session churn recycles bindings, so the same
// (gateway, port) tuple legitimately reappears for a *different* user —
// traffic no per-client key table can tell apart from tuple reuse.
//
// Sessions open and close throughout the trace (kOpen/kClose), driven by
// a global time-ordered scheduler so each gateway's acquire/release
// sequence matches event time across all its users.
#ifndef TCPDEMUX_SIM_WORKLOADS_NATPOP_WORKLOAD_H_
#define TCPDEMUX_SIM_WORKLOADS_NATPOP_WORKLOAD_H_

#include <cstdint>

#include "sim/workloads/workload.h"

namespace tcpdemux::sim::workloads {

struct NatPopParams {
  std::uint32_t clients = 5000;   ///< users behind the NATs
  std::uint32_t gateways = 16;    ///< public IPs the server actually sees
  double session_txns_mean = 6.0; ///< geometric session length
  double think_mean = 2.0;        ///< seconds between a user's transactions
  double response_time = 0.05;
  double rtt = 0.001;
  double duration = 60.0;
  std::uint64_t seed = 42;
};

struct NatPopWorkload {
  Workload workload;
  std::uint64_t sessions = 0;
  std::uint64_t binding_reuses = 0;  ///< acquires served by a recycled port
};

[[nodiscard]] NatPopWorkload generate_natpop_workload(
    const NatPopParams& params);

}  // namespace tcpdemux::sim::workloads

#endif  // TCPDEMUX_SIM_WORKLOADS_NATPOP_WORKLOAD_H_
