#include "sim/polling_workload.h"

#include <stdexcept>

namespace tcpdemux::sim {

Trace generate_polling_trace(const PollingWorkloadParams& params) {
  if (params.terminals == 0) {
    throw std::invalid_argument("polling workload: terminals must be >= 1");
  }
  if (params.response_time < params.rtt) {
    throw std::invalid_argument(
        "polling workload: response time must cover the round trip");
  }

  Trace trace;
  trace.connections = params.terminals;
  const double slot = params.period / params.terminals;
  const double half_rtt = 0.5 * params.rtt;
  const double server_processing = params.response_time - params.rtt;

  for (std::uint32_t terminal = 0; terminal < params.terminals; ++terminal) {
    double entry = static_cast<double>(terminal) * slot;
    while (entry < params.duration) {
      const double query_arrival = entry + half_rtt;
      trace.events.push_back(
          TraceEvent{query_arrival, terminal, TraceEventKind::kArrivalData});
      trace.events.push_back(
          TraceEvent{query_arrival, terminal, TraceEventKind::kTransmit});
      trace.events.push_back(TraceEvent{query_arrival + server_processing,
                                        terminal, TraceEventKind::kTransmit});
      trace.events.push_back(TraceEvent{query_arrival + params.response_time,
                                        terminal, TraceEventKind::kArrivalAck});
      entry += params.period;
    }
  }

  trace.sort_by_time();
  return trace;
}

}  // namespace tcpdemux::sim
