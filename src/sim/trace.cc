#include "sim/trace.h"

#include <algorithm>

namespace tcpdemux::sim {

std::string_view to_string(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kArrivalData: return "data";
    case TraceEventKind::kArrivalAck: return "ack";
    case TraceEventKind::kTransmit: return "xmit";
    case TraceEventKind::kOpen: return "open";
    case TraceEventKind::kClose: return "close";
  }
  return "?";
}

void Trace::sort_by_time() {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.time < b.time;
                   });
}

bool Trace::valid() const noexcept {
  double last = -1.0;
  for (const TraceEvent& e : events) {
    if (e.time < last) return false;
    if (e.conn >= connections) return false;
    last = e.time;
  }
  return true;
}

std::size_t Trace::arrivals() const noexcept {
  std::size_t n = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kArrivalData ||
        e.kind == TraceEventKind::kArrivalAck) {
      ++n;
    }
  }
  return n;
}

void Trace::merge(const Trace& other) {
  events.reserve(events.size() + other.events.size());
  for (TraceEvent e : other.events) {
    e.conn += connections;
    events.push_back(e);
  }
  connections += other.connections;
  sort_by_time();
}

}  // namespace tcpdemux::sim
