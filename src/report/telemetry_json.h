// JSON and CSV export for the telemetry registry (report/telemetry.h).
//
// Schema "tcpdemux.telemetry.v1" — one object per instrumented demuxer:
//
//   {
//     "schema": "tcpdemux.telemetry.v1",
//     "source": "sim/replay",              // who produced the report
//     "algorithm": "sequent(h=19,crc32)",  // Demuxer::name()
//     "counters": {"lookups": N, "found": N, "cache_hits": N,
//                  "inserts": N, "erases": N, "inserts_shed": N,
//                  "rehashes": N, "resizes_started": N,
//                  "resizes_completed": N, "resizes_deferred": N,
//                  "resize_steps": N},
//     "examined":     {"count": N, "sum": N, "max": N, "buckets": [...]},
//     "probe_length": {"count": N, "sum": N, "max": N, "buckets": [...]},
//     "latency_ns":   {"count": N, "sum": N, "max": N, "buckets": [...]},
//     "resize_work":    {"count": N, "sum": N, "max": N, "buckets": [...]},
//     "migration_debt": {"count": N, "sum": N, "max": N, "buckets": [...]},
//     "occupancy": {"partitions": N, "max": N, "mean": x, "skew": x},
//     "series": {"interval": N, "samples": [
//         {"events": N, "lookups": N, "mean_examined": x, "p50": N,
//          "p90": N, "p99": N, "max_examined": N, "hit_rate": x,
//          "occ_max": N, "occ_mean": x, "occ_skew": x}, ...]}
//   }
//
// Histogram bucket b counts values of bit width b (see Log2Histogram);
// trailing zero buckets are trimmed. Several reports serialize as a JSON
// array, mergeable exactly like report/bench_json.h exports. The schema is
// validated in CI by tools/telemetry/validate_schema.py (ci/check.sh
// stage 7) and documented in DESIGN.md "Observability".
#ifndef TCPDEMUX_REPORT_TELEMETRY_JSON_H_
#define TCPDEMUX_REPORT_TELEMETRY_JSON_H_

#include <cstddef>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "report/telemetry.h"

namespace tcpdemux::report {

/// Everything one export knows about one demuxer run. Plain aggregation:
/// the caller copies the registry state out of the demuxer (Telemetry is
/// a value type) plus whatever harness-side extras the run produced.
struct TelemetryReport {
  std::string source;     ///< producing harness, e.g. "sim/replay"
  std::string algorithm;  ///< Demuxer::name()
  Telemetry telemetry;    ///< counters + examined/probe histograms
  std::vector<std::size_t> occupancy;  ///< Demuxer::occupancy() at export
  TelemetrySeries series;              ///< may be empty
  Log2Histogram latency_ns;            ///< empty unless a run sampled it
};

/// Serializes one report as a schema-v1 JSON object.
[[nodiscard]] std::string telemetry_to_json(const TelemetryReport& report);

/// Serializes several reports as a JSON array (one object each).
[[nodiscard]] std::string telemetry_to_json(
    std::span<const TelemetryReport> reports);

/// Writes the JSON array form to `path`. Returns false on I/O failure.
[[nodiscard]] bool write_telemetry_json(
    const std::string& path, std::span<const TelemetryReport> reports);

/// Writes the time series as CSV (header + one row per sample), for
/// spreadsheet/gnuplot post-processing. Reuses report/csv quoting.
void write_series_csv(std::ostream& os, const std::string& algorithm,
                      const TelemetrySeries& series);

}  // namespace tcpdemux::report

#endif  // TCPDEMUX_REPORT_TELEMETRY_JSON_H_
