#include "report/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace tcpdemux::report {

void plot(std::ostream& os, const std::vector<Series>& series,
          const PlotOptions& options) {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_data_min = x_min;
  double y_max = -std::numeric_limits<double>::infinity();
  for (const Series& s : series) {
    // A caller may hand series with mismatched x/y lengths (e.g. a y column
    // truncated upstream); plot the pairs that exist instead of reading
    // past the shorter vector.
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      x_min = std::min(x_min, s.x[i]);
      x_max = std::max(x_max, s.x[i]);
      y_data_min = std::min(y_data_min, s.y[i]);
      y_max = std::max(y_max, s.y[i]);
    }
  }
  // y_from_zero anchors the axis at 0 for all-positive data; with negative
  // values that anchor would clamp every point to the edge rows, so fall
  // back to the true y-range.
  const double y_min =
      options.y_from_zero ? std::min(0.0, y_data_min) : y_data_min;
  if (!(x_max > x_min)) x_max = x_min + 1.0;
  if (!(y_max > y_min)) y_max = y_min + 1.0;

  const int w = std::max(16, options.width);
  const int h = std::max(8, options.height);
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  for (const Series& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double fx = (s.x[i] - x_min) / (x_max - x_min);
      const double fy = (s.y[i] - y_min) / (y_max - y_min);
      const int col = std::clamp(static_cast<int>(std::lround(fx * (w - 1))),
                                 0, w - 1);
      const int row = std::clamp(static_cast<int>(std::lround(fy * (h - 1))),
                                 0, h - 1);
      grid[static_cast<std::size_t>(h - 1 - row)]
          [static_cast<std::size_t>(col)] = s.glyph;
    }
  }

  if (!options.title.empty()) os << options.title << '\n';
  char buf[64];
  for (int r = 0; r < h; ++r) {
    const double y =
        y_max - (y_max - y_min) * static_cast<double>(r) / (h - 1);
    if (r % 4 == 0 || r == h - 1) {
      std::snprintf(buf, sizeof buf, "%10.1f |", y);
    } else {
      std::snprintf(buf, sizeof buf, "%10s |", "");
    }
    os << buf << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
     << '\n';
  std::snprintf(buf, sizeof buf, "%10.1f", x_min);
  os << ' ' << buf << std::string(static_cast<std::size_t>(std::max(1, w - 10)), ' ');
  std::snprintf(buf, sizeof buf, "%.1f", x_max);
  os << buf << '\n';
  if (!options.x_label.empty()) {
    os << std::string(12, ' ') << options.x_label << '\n';
  }
  os << "  legend:";
  for (const Series& s : series) {
    os << "  " << s.glyph << " = " << s.label;
  }
  os << '\n';
}

void print_bars(std::ostream& os, const std::vector<std::string>& labels,
                const std::vector<double>& values, int width) {
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (std::size_t i = 0; i < labels.size() && i < values.size(); ++i) {
    max_value = std::max(max_value, values[i]);
    label_width = std::max(label_width, labels[i].size());
  }
  if (max_value <= 0.0) max_value = 1.0;
  for (std::size_t i = 0; i < labels.size() && i < values.size(); ++i) {
    const int bar = static_cast<int>(
        std::lround(values[i] / max_value * std::max(1, width)));
    os << ' ' << std::string(label_width - labels[i].size(), ' ')
       << labels[i] << " |" << std::string(static_cast<std::size_t>(bar), '#')
       << ' ' << values[i] << '\n';
  }
}

}  // namespace tcpdemux::report
