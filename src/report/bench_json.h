// Minimal JSON export for the wall-clock benches.
//
// Each bench binary accumulates flat records — (bench, case name, metric
// map) — and serializes them as a JSON array so CI can merge the per-binary
// files into one BENCH_wallclock.json and dashboards can diff runs without
// scraping the human-readable tables. Deliberately tiny: no escaping needs
// beyond the handful of characters our names can contain, no parsing, no
// nested structures.
#ifndef TCPDEMUX_REPORT_BENCH_JSON_H_
#define TCPDEMUX_REPORT_BENCH_JSON_H_

#include <string>
#include <utility>
#include <vector>

namespace tcpdemux::report {

/// One measured case: `bench` is the binary ("wallclock_lookup"), `name`
/// the case within it ("flat:4096 users=20000"). Metrics keep insertion
/// order so the JSON diffs stably run-to-run.
struct BenchRecord {
  std::string bench;
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;

  void add_metric(std::string key, double value) {
    metrics.emplace_back(std::move(key), value);
  }
};

/// Accumulates records and serializes them as a JSON array:
///   [{"bench": "...", "name": "...", "metrics": {"ns_per_op": 12.3}}, ...]
/// Arrays from several binaries concatenate into one valid file by merging
/// their elements, which is exactly what ci/bench_smoke.sh does.
class BenchJsonWriter {
 public:
  void add(BenchRecord record);

  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`. Returns false (and leaves no partial
  /// file behind the caller cares about) on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

 private:
  std::vector<BenchRecord> records_;
};

}  // namespace tcpdemux::report

#endif  // TCPDEMUX_REPORT_BENCH_JSON_H_
