#include "report/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tcpdemux::report {

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, value);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) os << '+';
    }
    os << '\n';
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << std::string(widths[c] - cell.size(), ' ') << cell << ' ';
      if (c + 1 < widths.size()) os << '|';
    }
    os << '\n';
  };

  print_cells(headers_);
  print_rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(rules_.begin(), rules_.end(), r) != rules_.end()) {
      print_rule();
    }
    print_cells(rows_[r]);
  }
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace tcpdemux::report
