#include "report/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

namespace tcpdemux::report {

std::uint64_t Log2Histogram::count() const noexcept {
  return std::accumulate(buckets_.begin(), buckets_.end(), std::uint64_t{0});
}

double Log2Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(n);
}

std::vector<std::uint64_t> Log2Histogram::nonzero_buckets() const {
  std::size_t width = kBuckets;
  while (width > 0 && buckets_[width - 1] == 0) --width;
  return {buckets_.begin(), buckets_.begin() + width};
}

std::uint64_t Log2Histogram::percentile_upper(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank, exactly as sim::SampleStats::percentile: the ceil(q*n)-th
  // smallest sample, located by walking the cumulative bucket counts.
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) return bucket_upper(b);
  }
  return max_;
}

Log2Histogram Log2Histogram::since(const Log2Histogram& earlier) const {
  Log2Histogram delta;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    delta.buckets_[b] = buckets_[b] - earlier.buckets_[b];
    if (delta.buckets_[b] != 0) delta.max_ = bucket_upper(b);
  }
  delta.sum_ = sum_ - earlier.sum_;
  return delta;
}

TelemetrySample interval_sample(std::uint64_t events, const Telemetry& cur,
                                const Telemetry& prev,
                                std::span<const std::size_t> occupancy) {
  TelemetrySample s;
  s.events = events;
  const TelemetryCounters& c = cur.counters();
  const TelemetryCounters& p = prev.counters();
  s.lookups = c.lookups - p.lookups;
  if (s.lookups != 0) {
    s.hit_rate = static_cast<double>(c.cache_hits - p.cache_hits) /
                 static_cast<double>(s.lookups);
  }
  const Log2Histogram delta = cur.examined().since(prev.examined());
  s.mean_examined = delta.mean();
  s.p50 = delta.percentile_upper(0.50);
  s.p90 = delta.percentile_upper(0.90);
  s.p99 = delta.percentile_upper(0.99);
  s.max_examined = delta.max();

  std::size_t total = 0;
  for (const std::size_t o : occupancy) {
    total += o;
    s.occ_max = std::max<std::uint64_t>(s.occ_max, o);
  }
  if (!occupancy.empty()) {
    s.occ_mean =
        static_cast<double>(total) / static_cast<double>(occupancy.size());
  }
  if (s.occ_mean > 0.0) {
    s.occ_skew = static_cast<double>(s.occ_max) / s.occ_mean;
  }
  return s;
}

LatencySampler::LatencySampler(std::uint32_t every_n)
    : every_(every_n == 0 ? 1 : every_n) {
  // Calibration, bench::time_loop style: the cost of one now()/now() pair
  // is what a sampled lookup pays on top of the lookup itself. Take the
  // median of a batch so a stray preemption cannot poison the correction.
  using clock = std::chrono::steady_clock;
  constexpr int kProbes = 65;
  std::array<std::uint64_t, kProbes> deltas{};
  for (int i = 0; i < kProbes; ++i) {
    const auto t0 = clock::now();
    const auto t1 = clock::now();
    deltas[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  }
  std::sort(deltas.begin(), deltas.end());
  overhead_ns_ = deltas[kProbes / 2];
}

}  // namespace tcpdemux::report
