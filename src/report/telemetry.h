// Per-demuxer telemetry: counters, log2 histograms, occupancy snapshots,
// and interval time series.
//
// The paper's entire argument rests on one measured quantity — expected
// PCBs examined per packet — but an end-of-run mean hides exactly what
// Jain's locality studies [Jai89] say matters: the *distribution* and its
// evolution over time. This registry gives every demuxer a second,
// always-consistent accounting path next to DemuxStats:
//
//   * event counters (lookups, found, cache hits, shed inserts, overload
//     rehashes) are maintained unconditionally — a handful of add/or
//     instructions per event;
//   * log2-bucketed histograms of examined PCBs and miss-path probe
//     lengths are opt-in per run (enable_histograms), so the default
//     paper-faithful hot path pays one predictable branch and nothing
//     else;
//   * interval deltas (Log2Histogram::since, interval_sample) turn the
//     cumulative state into a time series of percentiles and occupancy
//     skew without per-packet sampling buffers.
//
// Everything here is plain data: no locks, no allocation on the hot path,
// no clock reads. The one component that touches a clock — LatencySampler
// — is harness-side (sim/replay, bench/wallclock) and never runs unless a
// run asks for it.
#ifndef TCPDEMUX_REPORT_TELEMETRY_H_
#define TCPDEMUX_REPORT_TELEMETRY_H_

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace tcpdemux::report {

/// Power-of-two histogram: bucket b counts values whose bit width is b
/// (0 -> {0}, 1 -> {1}, 2 -> {2,3}, 3 -> {4..7}, ...), matching
/// sim::SampleStats::log2_buckets so the two accounting paths can be
/// differential-tested against each other. Tracks the exact sum and max so
/// totals stay bit-exact with DemuxStats, not bucket-approximate.
class Log2Histogram {
 public:
  /// bit_width of a uint64_t is at most 64, so 65 buckets cover any value.
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t value) noexcept {
    ++buckets_[static_cast<std::size_t>(std::bit_width(value))];
    sum_ += value;
    if (value > max_) max_ = value;
  }

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b];
  }
  /// Buckets with trailing zeros trimmed (export form).
  [[nodiscard]] std::vector<std::uint64_t> nonzero_buckets() const;

  /// Inclusive upper bound of the value range bucket `b` covers:
  /// 0 for bucket 0, 2^b - 1 otherwise.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t b) noexcept {
    return b == 0 ? 0 : (b >= 64 ? ~0ULL : (1ULL << b) - 1);
  }

  /// Nearest-rank percentile resolved to its bucket's upper bound (the
  /// histogram cannot resolve finer); q clamped to [0, 1]. 0 when empty.
  [[nodiscard]] std::uint64_t percentile_upper(double q) const noexcept;

  /// Per-bucket difference `*this - earlier`, for interval deltas.
  /// `earlier` must be a previous snapshot of the same histogram. The
  /// delta's max is the upper bound of its highest occupied bucket (the
  /// true interval max is not recoverable from cumulative state).
  [[nodiscard]] Log2Histogram since(const Log2Histogram& earlier) const;

  /// Adds `other`'s contents into this histogram: buckets elementwise,
  /// sum exactly, max as the larger of the two. Merging the histograms of
  /// a disjoint split of one sample stream is bit-identical to having
  /// recorded the whole stream into a single histogram (count, sum, max,
  /// every bucket, and therefore every nearest-rank percentile) — the
  /// property the sharded aggregation path depends on.
  void merge_from(const Log2Histogram& other) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void reset() noexcept { *this = Log2Histogram{}; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Event counters every demuxer maintains unconditionally.
struct TelemetryCounters {
  std::uint64_t lookups = 0;
  std::uint64_t found = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t inserts = 0;       ///< successful PCB registrations
  std::uint64_t erases = 0;        ///< successful PCB removals
  std::uint64_t inserts_shed = 0;  ///< inserts refused at a max_pcbs cap
  std::uint64_t rehashes = 0;      ///< overload-triggered seed rotations
  // Incremental-resize ledger (growing backends with `incremental` only;
  // see DESIGN.md "Incremental resize & degradation ladder").
  std::uint64_t resizes_started = 0;    ///< migrations begun (new table up)
  std::uint64_t resizes_completed = 0;  ///< migrations fully drained
  std::uint64_t resizes_deferred = 0;   ///< growth attempts refused by the
                                        ///  allocator (ladder rung 1)
  std::uint64_t resize_steps = 0;       ///< bounded migration batches run
};

/// The per-demuxer registry: fixed-slot counters plus opt-in histograms.
/// All telemetry-bearing counters in src/core route through this type
/// (lint rule `telemetry-registry` bans ad-hoc mutable file-scope
/// counters), so every algorithm exports the same schema.
///
/// Threading: deliberately lock-free by *ownership*, not by mutex — the
/// registry is plain data mutated only by its owning demuxer under that
/// demuxer's own synchronization contract (single-threaded for registry
/// algorithms, caller-coordinated for the concurrent ones), exactly so
/// the hot path stays at pre-telemetry cost. There is therefore no
/// capability to annotate; the compile-time discipline that covers this
/// type is the `lock-discipline` lint pass, which guarantees any mutex a
/// future revision adds here must be the annotated core::Mutex (see
/// core/thread_annotations.h and DESIGN.md "Static analysis").
class Telemetry {
 public:
  /// Records one completed lookup. Counters always; histograms only when
  /// enabled. `examined` lands in the examined-PCB histogram, and — for
  /// lookups the single-entry caches did not absorb — in the miss-path
  /// probe-length histogram.
  void on_lookup(std::uint32_t examined, bool found, bool cache_hit) noexcept {
    ++counters_.lookups;
    counters_.found += static_cast<std::uint64_t>(found);
    counters_.cache_hits += static_cast<std::uint64_t>(cache_hit);
    if (!histograms_enabled_) return;
    examined_.add(examined);
    if (!cache_hit) probe_length_.add(examined);
  }
  void on_insert() noexcept { ++counters_.inserts; }
  void on_erase() noexcept { ++counters_.erases; }
  void on_shed() noexcept { ++counters_.inserts_shed; }
  void on_rehash() noexcept { ++counters_.rehashes; }

  // Incremental-resize events (growing backends with `incremental`).
  void on_resize_start() noexcept { ++counters_.resizes_started; }
  void on_resize_complete() noexcept { ++counters_.resizes_completed; }
  void on_resize_defer() noexcept { ++counters_.resizes_deferred; }
  /// Records one bounded migration batch: `moved` entries re-placed this
  /// step (the per-operation pause surrogate) and `debt` entries still
  /// waiting in the old table afterwards. Counters always; histograms only
  /// when enabled, like on_lookup.
  void on_resize_step(std::uint64_t moved, std::uint64_t debt) noexcept {
    ++counters_.resize_steps;
    if (!histograms_enabled_) return;
    resize_work_.add(moved);
    migration_debt_.add(debt);
  }

  /// Overwrites the three lookup counters. For owners that already keep a
  /// lookup ledger (core::Demuxer's DemuxStats): they skip on_lookup in
  /// counters-only mode to keep the fast path at its pre-telemetry memory
  /// footprint, then sync the shared counters here when the registry is
  /// read. Owners without such a ledger (tcp::SynCache) just call
  /// on_lookup and never need this.
  void set_lookup_counters(std::uint64_t lookups, std::uint64_t found,
                           std::uint64_t cache_hits) noexcept {
    counters_.lookups = lookups;
    counters_.found = found;
    counters_.cache_hits = cache_hits;
  }

  /// Histograms are off by default so the paper-faithful fast path pays
  /// one predictable branch per lookup; harnesses that want distributions
  /// (replay time series, fuzz differential checks) switch them on per
  /// run. Enabling mid-run is allowed: the histograms then cover only the
  /// lookups issued while enabled.
  void enable_histograms(bool on) noexcept { histograms_enabled_ = on; }
  [[nodiscard]] bool histograms_enabled() const noexcept {
    return histograms_enabled_;
  }

  [[nodiscard]] const TelemetryCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const Log2Histogram& examined() const noexcept {
    return examined_;
  }
  [[nodiscard]] const Log2Histogram& probe_length() const noexcept {
    return probe_length_;
  }
  [[nodiscard]] const Log2Histogram& resize_work() const noexcept {
    return resize_work_;
  }
  [[nodiscard]] const Log2Histogram& migration_debt() const noexcept {
    return migration_debt_;
  }

  /// Accumulates `other`'s counters and histograms into this registry.
  ///
  /// This is the one sanctioned way to aggregate N per-shard registries
  /// into a fleet view. The contract that makes it safe: the caller
  /// merges *synced snapshots* (each shard's telemetry() return value,
  /// whose lookup counters were just overwritten from that shard's
  /// DemuxStats ledger via set_lookup_counters) into a *fresh* target.
  /// Merging into persistent state across repeated reads would re-add
  /// already-synced counters — the aggregation double-count bug this
  /// method's regression test pins down (see telemetry_test.cc
  /// MergeIsIdempotentAcrossRepeatedReads).
  void merge_from(const Telemetry& other) noexcept {
    counters_.lookups += other.counters_.lookups;
    counters_.found += other.counters_.found;
    counters_.cache_hits += other.counters_.cache_hits;
    counters_.inserts += other.counters_.inserts;
    counters_.erases += other.counters_.erases;
    counters_.inserts_shed += other.counters_.inserts_shed;
    counters_.rehashes += other.counters_.rehashes;
    counters_.resizes_started += other.counters_.resizes_started;
    counters_.resizes_completed += other.counters_.resizes_completed;
    counters_.resizes_deferred += other.counters_.resizes_deferred;
    counters_.resize_steps += other.counters_.resize_steps;
    examined_.merge_from(other.examined_);
    probe_length_.merge_from(other.probe_length_);
    resize_work_.merge_from(other.resize_work_);
    migration_debt_.merge_from(other.migration_debt_);
  }

  void reset() noexcept {
    const bool keep = histograms_enabled_;
    *this = Telemetry{};
    histograms_enabled_ = keep;
  }

 private:
  // Member order is the hot-path cache layout: the flag and the three
  // lookup counters are touched on EVERY lookup and must stay within one
  // cache line of the start of the object (which sits right after the
  // demuxer's DemuxStats). The ~1 KiB histograms go last so the
  // counters-only default mode never pulls their lines in.
  bool histograms_enabled_ = false;
  TelemetryCounters counters_;
  Log2Histogram examined_;
  Log2Histogram probe_length_;
  Log2Histogram resize_work_;
  Log2Histogram migration_debt_;
};

/// One interval observation of a demuxer under load: examined-PCB
/// percentiles over the interval plus an occupancy-skew snapshot.
struct TelemetrySample {
  std::uint64_t events = 0;       ///< arrivals processed when taken
  std::uint64_t lookups = 0;      ///< lookups within the interval
  double mean_examined = 0.0;     ///< interval mean (exact, from sums)
  std::uint64_t p50 = 0;          ///< interval percentiles, bucket upper
  std::uint64_t p90 = 0;          ///  bounds (log2 resolution)
  std::uint64_t p99 = 0;
  std::uint64_t max_examined = 0;
  double hit_rate = 0.0;          ///< interval cache-hit rate
  std::uint64_t occ_max = 0;      ///< largest partition right now
  double occ_mean = 0.0;          ///< size / partitions right now
  double occ_skew = 0.0;          ///< occ_max / occ_mean (1.0 = balanced)
};

/// Interval-driven time series, as exported by sim/replay.
struct TelemetrySeries {
  std::uint64_t interval = 0;  ///< arrivals per sample (0 = none taken)
  std::vector<TelemetrySample> samples;
};

/// Builds one sample from the registry state at the interval boundary:
/// `cur` minus `prev` gives the interval's lookups and distribution,
/// `occupancy` the instantaneous partition sizes (Demuxer::occupancy()).
/// Requires cur's histograms enabled for the percentile fields to be
/// meaningful; with histograms off they are 0 and mean/hit-rate still
/// come from the counters.
[[nodiscard]] TelemetrySample interval_sample(
    std::uint64_t events, const Telemetry& cur, const Telemetry& prev,
    std::span<const std::size_t> occupancy);

/// Optional sampled lookup-latency recorder, used by harnesses (replay,
/// wallclock benches) around Demuxer::lookup() calls — never inside the
/// demuxer, so the measured path is the real one. Calibrated like
/// bench::time_loop: at enable time it measures the median back-to-back
/// steady_clock read cost and subtracts it from every recorded delta, so
/// the histogram reflects lookup work, not clock overhead.
class LatencySampler {
 public:
  LatencySampler() = default;  ///< disabled; should_sample() always false

  /// Samples one lookup in `every_n` (>= 1). Calibrates the clock.
  explicit LatencySampler(std::uint32_t every_n);

  [[nodiscard]] bool enabled() const noexcept { return every_ != 0; }

  /// True when the current lookup should be timed (1-in-N countdown).
  [[nodiscard]] bool should_sample() noexcept {
    if (every_ == 0) return false;
    if (++tick_ < every_) return false;
    tick_ = 0;
    return true;
  }

  /// Records one timed lookup, net of the calibrated clock overhead.
  void record_ns(std::uint64_t ns) noexcept {
    histogram_.add(ns > overhead_ns_ ? ns - overhead_ns_ : 0);
  }

  [[nodiscard]] const Log2Histogram& histogram() const noexcept {
    return histogram_;
  }
  [[nodiscard]] std::uint64_t overhead_ns() const noexcept {
    return overhead_ns_;
  }

 private:
  std::uint32_t every_ = 0;
  std::uint32_t tick_ = 0;
  std::uint64_t overhead_ns_ = 0;
  Log2Histogram histogram_;
};

}  // namespace tcpdemux::report

#endif  // TCPDEMUX_REPORT_TELEMETRY_H_
