#include "report/telemetry_json.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/csv.h"

namespace tcpdemux::report {
namespace {

// Same minimal escaping contract as bench_json.cc: algorithm names and
// source tags are the only strings and contain no exotic characters, but
// stay safe if one ever does.
void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_double(std::ostringstream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

void append_histogram(std::ostringstream& os, const char* name,
                      const Log2Histogram& h) {
  os << '"' << name << "\": {\"count\": " << h.count()
     << ", \"sum\": " << h.sum() << ", \"max\": " << h.max()
     << ", \"buckets\": [";
  const auto buckets = h.nonzero_buckets();
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (b != 0) os << ", ";
    os << buckets[b];
  }
  os << "]}";
}

void append_report(std::ostringstream& os, const TelemetryReport& r) {
  os << "{\"schema\": \"tcpdemux.telemetry.v1\", \"source\": ";
  append_escaped(os, r.source);
  os << ", \"algorithm\": ";
  append_escaped(os, r.algorithm);

  const TelemetryCounters& c = r.telemetry.counters();
  os << ",\n \"counters\": {\"lookups\": " << c.lookups
     << ", \"found\": " << c.found << ", \"cache_hits\": " << c.cache_hits
     << ", \"inserts\": " << c.inserts << ", \"erases\": " << c.erases
     << ", \"inserts_shed\": " << c.inserts_shed
     << ", \"rehashes\": " << c.rehashes
     << ", \"resizes_started\": " << c.resizes_started
     << ", \"resizes_completed\": " << c.resizes_completed
     << ", \"resizes_deferred\": " << c.resizes_deferred
     << ", \"resize_steps\": " << c.resize_steps << "},\n ";
  append_histogram(os, "examined", r.telemetry.examined());
  os << ",\n ";
  append_histogram(os, "probe_length", r.telemetry.probe_length());
  os << ",\n ";
  append_histogram(os, "latency_ns", r.latency_ns);
  os << ",\n ";
  append_histogram(os, "resize_work", r.telemetry.resize_work());
  os << ",\n ";
  append_histogram(os, "migration_debt", r.telemetry.migration_debt());

  std::size_t occ_total = 0;
  std::size_t occ_max = 0;
  for (const std::size_t o : r.occupancy) {
    occ_total += o;
    if (o > occ_max) occ_max = o;
  }
  const double occ_mean =
      r.occupancy.empty() ? 0.0
                          : static_cast<double>(occ_total) /
                                static_cast<double>(r.occupancy.size());
  os << ",\n \"occupancy\": {\"partitions\": " << r.occupancy.size()
     << ", \"max\": " << occ_max << ", \"mean\": ";
  append_double(os, occ_mean);
  os << ", \"skew\": ";
  append_double(os, occ_mean > 0.0 ? static_cast<double>(occ_max) / occ_mean
                                   : 0.0);
  os << "},\n \"series\": {\"interval\": " << r.series.interval
     << ", \"samples\": [";
  for (std::size_t i = 0; i < r.series.samples.size(); ++i) {
    const TelemetrySample& s = r.series.samples[i];
    if (i != 0) os << ',';
    os << "\n  {\"events\": " << s.events << ", \"lookups\": " << s.lookups
       << ", \"mean_examined\": ";
    append_double(os, s.mean_examined);
    os << ", \"p50\": " << s.p50 << ", \"p90\": " << s.p90
       << ", \"p99\": " << s.p99 << ", \"max_examined\": " << s.max_examined
       << ", \"hit_rate\": ";
    append_double(os, s.hit_rate);
    os << ", \"occ_max\": " << s.occ_max << ", \"occ_mean\": ";
    append_double(os, s.occ_mean);
    os << ", \"occ_skew\": ";
    append_double(os, s.occ_skew);
    os << '}';
  }
  os << "]}}";
}

}  // namespace

std::string telemetry_to_json(const TelemetryReport& report) {
  std::ostringstream os;
  append_report(os, report);
  os << '\n';
  return os.str();
}

std::string telemetry_to_json(std::span<const TelemetryReport> reports) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    append_report(os, reports[i]);
    if (i + 1 != reports.size()) os << ',';
    os << '\n';
  }
  os << "]\n";
  return os.str();
}

bool write_telemetry_json(const std::string& path,
                          std::span<const TelemetryReport> reports) {
  std::ofstream out(path);
  if (!out) return false;
  out << telemetry_to_json(reports);
  return static_cast<bool>(out);
}

void write_series_csv(std::ostream& os, const std::string& algorithm,
                      const TelemetrySeries& series) {
  write_csv_row(os, {"algorithm", "events", "lookups", "mean_examined",
                     "p50", "p90", "p99", "max_examined", "hit_rate",
                     "occ_max", "occ_mean", "occ_skew"});
  char buf[32];
  const auto fmt = [&buf](double v) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  for (const TelemetrySample& s : series.samples) {
    write_csv_row(
        os, {algorithm, std::to_string(s.events), std::to_string(s.lookups),
             fmt(s.mean_examined), std::to_string(s.p50),
             std::to_string(s.p90), std::to_string(s.p99),
             std::to_string(s.max_examined), fmt(s.hit_rate),
             std::to_string(s.occ_max), fmt(s.occ_mean), fmt(s.occ_skew)});
  }
}

}  // namespace tcpdemux::report
