// Multi-series ASCII line plots, used by the figure benches to render the
// paper's Figures 4, 13, and 14 directly in terminal output.
#ifndef TCPDEMUX_REPORT_ASCII_PLOT_H_
#define TCPDEMUX_REPORT_ASCII_PLOT_H_

#include <ostream>
#include <string>
#include <vector>

namespace tcpdemux::report {

struct Series {
  std::string label;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  int width = 72;    ///< plot-area columns
  int height = 24;   ///< plot-area rows
  std::string title;
  std::string x_label;
  std::string y_label;
  bool y_from_zero = true;
};

/// Renders all series on a shared linearly-scaled grid with axis
/// annotations and a legend. Later series overwrite earlier glyphs where
/// they collide.
void plot(std::ostream& os, const std::vector<Series>& series,
          const PlotOptions& options);

/// Horizontal bar chart: one labeled row per value, bars scaled to the
/// maximum. Used for distribution histograms.
void print_bars(std::ostream& os, const std::vector<std::string>& labels,
                const std::vector<double>& values, int width = 50);

}  // namespace tcpdemux::report

#endif  // TCPDEMUX_REPORT_ASCII_PLOT_H_
