// Minimal CSV emission so bench output can be post-processed.
#ifndef TCPDEMUX_REPORT_CSV_H_
#define TCPDEMUX_REPORT_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace tcpdemux::report {

/// Writes one CSV row, quoting cells containing commas, quotes or newlines.
void write_csv_row(std::ostream& os, const std::vector<std::string>& cells);

}  // namespace tcpdemux::report

#endif  // TCPDEMUX_REPORT_CSV_H_
