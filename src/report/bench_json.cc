#include "report/bench_json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace tcpdemux::report {
namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_number(std::ostringstream& os, double v) {
  // JSON has no NaN/Inf; null keeps the file parseable if a metric was
  // never measured.
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

}  // namespace

void BenchJsonWriter::add(BenchRecord record) {
  records_.push_back(std::move(record));
}

std::string BenchJsonWriter::to_json() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    os << "  {\"bench\": ";
    append_escaped(os, r.bench);
    os << ", \"name\": ";
    append_escaped(os, r.name);
    os << ", \"metrics\": {";
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      if (m != 0) os << ", ";
      append_escaped(os, r.metrics[m].first);
      os << ": ";
      append_number(os, r.metrics[m].second);
    }
    os << "}}";
    if (i + 1 != records_.size()) os << ',';
    os << '\n';
  }
  os << "]\n";
  return os.str();
}

bool BenchJsonWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace tcpdemux::report
