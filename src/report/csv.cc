#include "report/csv.h"

namespace tcpdemux::report {

void write_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os << ',';
    const std::string& cell = cells[i];
    const bool needs_quote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote) {
      os << cell;
      continue;
    }
    os << '"';
    for (const char ch : cell) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  }
  os << '\n';
}

}  // namespace tcpdemux::report
