// Fixed-width text tables for bench output.
#ifndef TCPDEMUX_REPORT_TABLE_H_
#define TCPDEMUX_REPORT_TABLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace tcpdemux::report {

/// Formats `value` with `precision` digits after the point.
[[nodiscard]] std::string fmt(double value, int precision = 1);

/// Scientific notation with `precision` significant decimals ("1.9e-35").
[[nodiscard]] std::string fmt_sci(double value, int precision = 1);

/// Right-aligned fixed-width table. Column widths auto-fit content.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Inserts a horizontal rule before the next added row.
  void add_rule() { rules_.push_back(rows_.size()); }

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> rules_;
};

}  // namespace tcpdemux::report

#endif  // TCPDEMUX_REPORT_TABLE_H_
