#include "analytic/sequent_model.h"

#include <algorithm>
#include <cmath>

#include "analytic/bsd_model.h"

namespace tcpdemux::analytic {

double sequent_cost_approx(double users, double chains) noexcept {
  if (users <= 0.0) return 0.0;
  return std::max(1.0, bsd_cost(users / chains));
}

double sequent_quiet_probability(double users, double chains, double rate,
                                 double response_time) noexcept {
  const double per_chain = users / chains;
  if (per_chain <= 1.0) return 1.0;
  return std::exp(-2.0 * rate * response_time * (per_chain - 1.0));
}

double sequent_ack_cost(double users, double chains, double rate,
                        double response_time) noexcept {
  const double m = users / chains;
  const double p =
      sequent_quiet_probability(users, chains, rate, response_time);
  return std::max(1.0, p + (1.0 - p) * (m + 1.0) / 2.0);
}

double sequent_cost_exact(double users, double chains, double rate,
                          double response_time) noexcept {
  return 0.5 * (sequent_cost_approx(users, chains) +
                sequent_ack_cost(users, chains, rate, response_time));
}

SearchCost SequentModel::search_cost(const TpcaParams& params) const {
  SearchCost cost;
  cost.txn_entry = sequent_cost_approx(params.users, chains_);
  cost.ack = sequent_ack_cost(params.users, chains_, params.rate,
                              params.response_time);
  cost.overall = 0.5 * (cost.txn_entry + cost.ack);
  return cost;
}

std::string SequentModel::name() const {
  return "sequent(h=" + std::to_string(static_cast<int>(chains_)) + ")";
}

}  // namespace tcpdemux::analytic
