// Partridge/Pink send/receive cache model — paper §3.3,
// Equations 7–17.
//
// Three cases, each the expected PCBs examined for one packet class:
//   N1 — transaction arrival with think time T > R + D (Equation 11)
//   N2 — transaction arrival with think time T < R + D (Equation 14)
//   Na — transport-level acknowledgement (Equation 16)
// N1 and N2 integrate over mutually exclusive think-time ranges, so the
// per-transaction cost is N1 + N2, and the overall per-packet cost is
// (Equation 7):  N = (N1 + N2 + Na) / 2.
//
// A surviving cache costs 1 examined PCB; a flushed cache costs (N+5)/2
// (both cache slots plus the (N+1)/2 average chain scan). Closed forms
// (S = R + D, M = N - 1):
//   N1 = (N+5)/2 e^{-aS}       - (N+3)/(2N)        e^{-aS(2N-1)}
//   N2 = (N+5)/2 (1 - e^{-aS}) - (N+3)/(2(2N-1)) (1 - e^{-aS(2N-1)})
//   Na = (N+5)/2               - (N+3)/2           e^{-2aD(N-1)}
#ifndef TCPDEMUX_ANALYTIC_SRCACHE_MODEL_H_
#define TCPDEMUX_ANALYTIC_SRCACHE_MODEL_H_

#include "analytic/model.h"

namespace tcpdemux::analytic {

/// Equation 11 (closed form).
[[nodiscard]] double srcache_n1(double users, double rate,
                                double response_time, double rtt) noexcept;
/// Equation 14 (closed form).
[[nodiscard]] double srcache_n2(double users, double rate,
                                double response_time, double rtt) noexcept;
/// Equation 16.
[[nodiscard]] double srcache_na(double users, double rate,
                                double rtt) noexcept;

/// Numeric-integration versions of Equations 10 and 13 (test validation).
[[nodiscard]] double srcache_n1_numeric(double users, double rate,
                                        double response_time, double rtt);
[[nodiscard]] double srcache_n2_numeric(double users, double rate,
                                        double response_time, double rtt);

class SrCacheModel final : public AnalyticModel {
 public:
  [[nodiscard]] SearchCost search_cost(
      const TpcaParams& params) const override;
  [[nodiscard]] std::string name() const override { return "srcache"; }
};

}  // namespace tcpdemux::analytic

#endif  // TCPDEMUX_ANALYTIC_SRCACHE_MODEL_H_
