// Adaptive Simpson quadrature, including semi-infinite intervals.
//
// The paper's Crowcroft and Partridge/Pink models integrate
// exponentially-weighted costs over the think-time distribution
// (Equations 5, 10, 13). We evaluate those integrals both in the closed
// forms derived in the model sources and numerically with this integrator;
// unit tests assert the two agree to ~1e-9.
#ifndef TCPDEMUX_ANALYTIC_INTEGRATE_H_
#define TCPDEMUX_ANALYTIC_INTEGRATE_H_

#include <functional>

namespace tcpdemux::analytic {

struct IntegrateOptions {
  double abs_tolerance = 1e-10;
  int max_depth = 50;
};

/// Adaptive Simpson integral of `f` over the finite interval [a, b].
[[nodiscard]] double integrate(const std::function<double(double)>& f,
                               double a, double b,
                               const IntegrateOptions& options = {});

/// Integral of `f` over [a, +inf) via the substitution t = a + u/(1-u),
/// u in [0,1). `f` must decay fast enough for the transformed integrand to
/// be bounded (exponentially-weighted integrands qualify).
[[nodiscard]] double integrate_to_infinity(
    const std::function<double(double)>& f, double a,
    const IntegrateOptions& options = {});

}  // namespace tcpdemux::analytic

#endif  // TCPDEMUX_ANALYTIC_INTEGRATE_H_
