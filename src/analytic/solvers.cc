#include "analytic/solvers.h"

#include "analytic/sequent_model.h"

namespace tcpdemux::analytic {

std::optional<std::uint32_t> sequent_chains_for_target(double users,
                                                       double rate,
                                                       double response_time,
                                                       double target_cost) {
  if (target_cost < 1.0) return std::nullopt;
  // Cost is non-increasing in H (see SequentModel tests); binary-search
  // the smallest adequate H in [1, users] — beyond N chains the cost is
  // already its floor of 1.
  std::uint32_t lo = 1;
  std::uint32_t hi = static_cast<std::uint32_t>(users) + 1;
  if (sequent_cost_exact(users, hi, rate, response_time) > target_cost) {
    return std::nullopt;
  }
  if (sequent_cost_exact(users, lo, rate, response_time) <= target_cost) {
    return lo;
  }
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (sequent_cost_exact(users, mid, rate, response_time) <= target_cost) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double sequent_users_for_target(double chains, double rate,
                                double response_time, double target_cost) {
  if (sequent_cost_exact(1.0, chains, rate, response_time) > target_cost) {
    return 0.0;
  }
  double lo = 1.0;
  double hi = 2.0;
  while (sequent_cost_exact(hi, chains, rate, response_time) <=
         target_cost) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e9) return hi;  // effectively unbounded
  }
  while (hi - lo > 1.0) {
    const double mid = 0.5 * (lo + hi);
    if (sequent_cost_exact(mid, chains, rate, response_time) <=
        target_cost) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::optional<double> crossover_population(
    const std::function<double(double)>& cost_a,
    const std::function<double(double)>& cost_b, double lo, double hi,
    double tolerance) {
  const auto diff = [&](double n) { return cost_a(n) - cost_b(n); };
  if (diff(lo) >= 0.0) return lo;  // a never led
  if (diff(hi) < 0.0) return std::nullopt;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (diff(mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace tcpdemux::analytic
