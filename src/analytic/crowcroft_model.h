// Crowcroft move-to-front model — paper §3.2, Equations 5 and 6.
//
// When a user's transaction arrives, the PCBs ahead of his are those of
// users who caused a packet to arrive since his PCB was last at the front
// (his previous response's acknowledgement). If his think time T exceeds
// the response time R, intervening users are those active in a window of
// T + R (direct arrivals during T plus acknowledgements provoked by
// arrivals during R); if T < R, the window is 2T. Acknowledgements see the
// much shorter window 2R.
//
// Equation 5 integrates the window population over the exponential
// think-time density; Equation 3's binomial sum collapses to
// (N-1)(1 - e^{-a W}) for window W, giving closed forms:
//   entry: (N-1) * [ (1 - e^{-aR}) - (1/3)(1 - e^{-3aR})   (T in [0,R])
//                  + e^{-aR} - e^{-3aR}/2 ]                 (T > R)
//   ack:   (N-1)(1 - e^{-2aR})
// Overall (Equation 6) is their mean. The sources also evaluate Equation 5
// by adaptive quadrature; tests assert both paths agree.
//
// Accounting note: the paper equates "search length" with the number of
// PCBs *preceding* the target (its published 78/190/362/659 ack values are
// exactly N(2R)), so these functions follow that convention. An
// implementation that counts the found node as examined reports one more;
// the benches note this when comparing against replayed traces.
#ifndef TCPDEMUX_ANALYTIC_CROWCROFT_MODEL_H_
#define TCPDEMUX_ANALYTIC_CROWCROFT_MODEL_H_

#include "analytic/model.h"

namespace tcpdemux::analytic {

/// Expected PCBs examined for a transaction-entry packet (1 + Equation 5),
/// closed form.
[[nodiscard]] double crowcroft_entry_cost(double users, double rate,
                                          double response_time) noexcept;

/// Same quantity by numeric integration of the Equation 5 integrand
/// (validation path for tests).
[[nodiscard]] double crowcroft_entry_cost_numeric(double users, double rate,
                                                  double response_time);

/// Expected PCBs examined for a transport-level acknowledgement:
/// 1 + N(2R).
[[nodiscard]] double crowcroft_ack_cost(double users, double rate,
                                        double response_time) noexcept;

/// §3.2 endnote: with deterministic think times (e.g. a central server
/// polling point-of-sale terminals) every other user's PCB jumps ahead
/// between a given user's transactions, so each lookup scans all N PCBs.
[[nodiscard]] double crowcroft_deterministic_cost(double users) noexcept;

class CrowcroftModel final : public AnalyticModel {
 public:
  [[nodiscard]] SearchCost search_cost(
      const TpcaParams& params) const override;
  [[nodiscard]] std::string name() const override { return "mtf"; }
};

}  // namespace tcpdemux::analytic

#endif  // TCPDEMUX_ANALYTIC_CROWCROFT_MODEL_H_
