#include "analytic/srcache_model.h"

#include <cmath>

#include "analytic/integrate.h"

namespace tcpdemux::analytic {
namespace {

/// Expected examined PCBs given cache-survival probability `p`:
/// p * 1 + (1 - p) * (N + 5) / 2.
double cost_given_survival(double users, double p) noexcept {
  const double miss = (users + 5.0) / 2.0;
  return p + (1.0 - p) * miss;
}

}  // namespace

double srcache_n1(double users, double rate, double response_time,
                  double rtt) noexcept {
  const double n = users;
  const double a = rate;
  const double s = response_time + rtt;
  // Integral over T in [S, inf) of a e^{-aT} * cost(p1(T)), with
  // p1(T) = e^{-a(T+S)(N-1)}  (Equation 8). See header for the result.
  return (n + 5.0) / 2.0 * std::exp(-a * s) -
         (n + 3.0) / (2.0 * n) * std::exp(-a * s * (2.0 * n - 1.0));
}

double srcache_n2(double users, double rate, double response_time,
                  double rtt) noexcept {
  const double n = users;
  const double a = rate;
  const double s = response_time + rtt;
  // Integral over T in [0, S) of a e^{-aT} * cost(p2(T)), with
  // p2(T) = e^{-2aT(N-1)}  (Equation 12).
  return (n + 5.0) / 2.0 * (1.0 - std::exp(-a * s)) -
         (n + 3.0) / (2.0 * (2.0 * n - 1.0)) *
             (1.0 - std::exp(-a * s * (2.0 * n - 1.0)));
}

double srcache_na(double users, double rate, double rtt) noexcept {
  // Equation 15/16: Craig has two windows of duration D to flush the
  // send-side cache; survival probability e^{-2aD(N-1)}.
  const double p = std::exp(-2.0 * rate * rtt * (users - 1.0));
  return cost_given_survival(users, p);
}

double srcache_n1_numeric(double users, double rate, double response_time,
                          double rtt) {
  const double a = rate;
  const double s = response_time + rtt;
  const auto f = [=](double t) {
    const double p = std::exp(-a * (t + s) * (users - 1.0));
    return a * std::exp(-a * t) * cost_given_survival(users, p);
  };
  return integrate_to_infinity(f, s);
}

double srcache_n2_numeric(double users, double rate, double response_time,
                          double rtt) {
  const double a = rate;
  const double s = response_time + rtt;
  const auto f = [=](double t) {
    const double p = std::exp(-2.0 * a * t * (users - 1.0));
    return a * std::exp(-a * t) * cost_given_survival(users, p);
  };
  return integrate(f, 0.0, s);
}

SearchCost SrCacheModel::search_cost(const TpcaParams& params) const {
  SearchCost cost;
  cost.txn_entry =
      srcache_n1(params.users, params.rate, params.response_time,
                 params.rtt) +
      srcache_n2(params.users, params.rate, params.response_time, params.rtt);
  cost.ack = srcache_na(params.users, params.rate, params.rtt);
  cost.overall = 0.5 * (cost.txn_entry + cost.ack);
  return cost;
}

}  // namespace tcpdemux::analytic
