// Exponential-distribution helpers used throughout the paper's analysis
// (§2–§3): pdf/cdf and the truncated negative-exponential think-time
// distribution the TPC/A rules prescribe.
#ifndef TCPDEMUX_ANALYTIC_EXP_MATH_H_
#define TCPDEMUX_ANALYTIC_EXP_MATH_H_

#include <cmath>

namespace tcpdemux::analytic {

/// Density of Exp(rate) at t (0 for t < 0).
[[nodiscard]] inline double exp_pdf(double rate, double t) noexcept {
  return t < 0.0 ? 0.0 : rate * std::exp(-rate * t);
}

/// CDF of Exp(rate): P(X <= t) = 1 - e^{-rate t}  (paper Equation 2).
[[nodiscard]] inline double exp_cdf(double rate, double t) noexcept {
  return t < 0.0 ? 0.0 : 1.0 - std::exp(-rate * t);
}

/// P(X > t) for Exp(rate).
[[nodiscard]] inline double exp_sf(double rate, double t) noexcept {
  return t < 0.0 ? 1.0 : std::exp(-rate * t);
}

/// Fraction of probability mass an Exp(mean) distribution carries above the
/// TPC/A truncation point `cap` — the paper (§3) argues this is negligible
/// (0.004% of values for cap = 10x mean).
[[nodiscard]] inline double truncated_tail_mass(double mean,
                                                double cap) noexcept {
  return std::exp(-cap / mean);
}

/// Mean of Exp(mean) truncated (re-drawn) at `cap`:
/// E[X | X <= cap] = mean - cap * e^{-cap/mean} / (1 - e^{-cap/mean}).
[[nodiscard]] inline double truncated_exp_mean(double mean,
                                               double cap) noexcept {
  const double q = std::exp(-cap / mean);
  return mean - cap * q / (1.0 - q);
}

}  // namespace tcpdemux::analytic

#endif  // TCPDEMUX_ANALYTIC_EXP_MATH_H_
