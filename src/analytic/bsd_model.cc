#include "analytic/bsd_model.h"

#include <cmath>

namespace tcpdemux::analytic {

double expected_users_entering(double users, double rate,
                               double interval) noexcept {
  // Equation 3 collapses to the binomial mean: (N-1) * F(T), with F the
  // exponential CDF (Equation 2). See analytic/binomial.h for the literal
  // sum, which tests confirm is identical.
  if (users <= 1.0) return 0.0;
  return (users - 1.0) * (1.0 - std::exp(-rate * interval));
}

double bsd_cost(double users) noexcept {
  if (users <= 0.0) return 0.0;
  return 1.0 + (users * users - 1.0) / (2.0 * users);
}

double bsd_packet_train_probability(double users, double rate,
                                    double response_time) noexcept {
  if (users <= 1.0) return 1.0;
  return std::exp(-2.0 * rate * response_time * (users - 1.0));
}

SearchCost BsdModel::search_cost(const TpcaParams& params) const {
  // The cache hit rate is 1/N regardless of packet class (packet trains
  // essentially never happen; see bsd_packet_train_probability), so both
  // classes cost Equation 1.
  SearchCost cost;
  cost.txn_entry = bsd_cost(params.users);
  cost.ack = bsd_cost(params.users);
  cost.overall = 0.5 * (cost.txn_entry + cost.ack);
  return cost;
}

}  // namespace tcpdemux::analytic
