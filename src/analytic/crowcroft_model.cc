#include "analytic/crowcroft_model.h"

#include <cmath>

#include "analytic/integrate.h"

namespace tcpdemux::analytic {

double crowcroft_entry_cost(double users, double rate,
                            double response_time) noexcept {
  if (users <= 1.0) return 0.0;
  const double a = rate;
  const double r = response_time;
  // Integral of a e^{-aT} (1 - e^{-2aT}) dT over [0, R]:
  const double below = (1.0 - std::exp(-a * r)) -
                       (1.0 - std::exp(-3.0 * a * r)) / 3.0;
  // Integral of a e^{-aT} (1 - e^{-a(T+R)}) dT over [R, inf):
  const double above = std::exp(-a * r) - 0.5 * std::exp(-3.0 * a * r);
  return (users - 1.0) * (below + above);
}

double crowcroft_entry_cost_numeric(double users, double rate,
                                    double response_time) {
  if (users <= 1.0) return 0.0;
  const double a = rate;
  const double r = response_time;
  const double n1 = users - 1.0;
  // Equation 5 with Equation 3 in closed (binomial-mean) form; the window
  // is 2T while the think time is below R and T + R above it.
  const auto below = [=](double t) {
    return a * std::exp(-a * t) * n1 * (1.0 - std::exp(-2.0 * a * t));
  };
  const auto above = [=](double t) {
    return a * std::exp(-a * t) * n1 * (1.0 - std::exp(-a * (t + r)));
  };
  return integrate(below, 0.0, r) + integrate_to_infinity(above, r);
}

double crowcroft_ack_cost(double users, double rate,
                          double response_time) noexcept {
  if (users <= 1.0) return 0.0;
  return (users - 1.0) * (1.0 - std::exp(-2.0 * rate * response_time));
}

double crowcroft_deterministic_cost(double users) noexcept {
  return users;
}

SearchCost CrowcroftModel::search_cost(const TpcaParams& params) const {
  SearchCost cost;
  cost.txn_entry =
      crowcroft_entry_cost(params.users, params.rate, params.response_time);
  cost.ack =
      crowcroft_ack_cost(params.users, params.rate, params.response_time);
  cost.overall = 0.5 * (cost.txn_entry + cost.ack);
  return cost;
}

}  // namespace tcpdemux::analytic
