// Common interface of the paper's analytic PCB-search-cost models.
//
// Every model answers: under TPC/A traffic with the given parameters, how
// many PCBs does the algorithm examine on average for (a) a transaction
// query, (b) a transport-level acknowledgement, and (c) overall (the server
// receives one of each per transaction, so overall = their mean)?
#ifndef TCPDEMUX_ANALYTIC_MODEL_H_
#define TCPDEMUX_ANALYTIC_MODEL_H_

#include <string>

namespace tcpdemux::analytic {

/// TPC/A traffic parameters as the paper's analysis uses them.
struct TpcaParams {
  double users = 2000.0;        ///< N (>= 10x the transaction rate)
  double rate = 0.1;            ///< a: per-user transaction rate, 1/s
  double response_time = 0.2;   ///< R: client-observed response time, s
  double rtt = 0.001;           ///< D: network round-trip time, s
};

/// Expected PCBs examined per received packet, by packet class.
struct SearchCost {
  double txn_entry = 0.0;  ///< arriving transaction query
  double ack = 0.0;        ///< arriving transport-level acknowledgement
  double overall = 0.0;    ///< mean of the two (equal arrival shares)
};

class AnalyticModel {
 public:
  virtual ~AnalyticModel() = default;
  [[nodiscard]] virtual SearchCost search_cost(
      const TpcaParams& params) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// N(T), paper Equation 3 (closed form): the expected number of the other
/// N-1 users to enter at least one transaction during an interval T.
[[nodiscard]] double expected_users_entering(double users, double rate,
                                             double interval) noexcept;

}  // namespace tcpdemux::analytic

#endif  // TCPDEMUX_ANALYTIC_MODEL_H_
