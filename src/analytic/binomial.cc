#include "analytic/binomial.h"

#include <cmath>

namespace tcpdemux::analytic {

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) noexcept {
  if (k > n) return -HUGE_VAL;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) noexcept {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = log_binomial_coefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_mean_by_sum(std::uint64_t n, double p) noexcept {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += static_cast<double>(i) * binomial_pmf(n, i, p);
  }
  return sum;
}

}  // namespace tcpdemux::analytic
