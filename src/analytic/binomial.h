// Numerically stable binomial sums for the paper's Equation 3.
//
// Equation 3 computes the expected number of the other N-1 users entering
// at least one transaction during an interval: a binomial-weighted average
//   sum_{i=0}^{N-1} i * C(N-1, i) * p^i * (1-p)^{N-1-i}
// which is exactly the mean of Binomial(N-1, p), i.e. (N-1)p. We provide
// both the literal log-space sum (stable to n ~ 1e5) and the closed form so
// tests can confirm the simplification the models rely on.
#ifndef TCPDEMUX_ANALYTIC_BINOMIAL_H_
#define TCPDEMUX_ANALYTIC_BINOMIAL_H_

#include <cstdint>

namespace tcpdemux::analytic {

/// log C(n, k), via lgamma.
[[nodiscard]] double log_binomial_coefficient(std::uint64_t n,
                                              std::uint64_t k) noexcept;

/// Binomial(n, p) probability mass at k, computed in log space.
[[nodiscard]] double binomial_pmf(std::uint64_t n, std::uint64_t k,
                                  double p) noexcept;

/// The literal Equation 3 sum: E[#successes] over Binomial(n, p), summed
/// term by term in log space.
[[nodiscard]] double binomial_mean_by_sum(std::uint64_t n, double p) noexcept;

/// Closed form of the same quantity: n * p.
[[nodiscard]] inline double binomial_mean(std::uint64_t n, double p) noexcept {
  return static_cast<double>(n) * p;
}

}  // namespace tcpdemux::analytic

#endif  // TCPDEMUX_ANALYTIC_BINOMIAL_H_
