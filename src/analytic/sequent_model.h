// Sequent hashed-chain model — paper §3.4, Equations 18–22.
//
// With H chains the per-chain population is N/H, so the naive approximation
// (Equations 18/19) is simply the BSD cost of an N/H-entry list:
//   C ≈ C_BSD(N/H) = 1 + ((N/H)^2 - 1) / (2 N/H).
// The refinement (Equations 20–22) notices that short chains make it likely
// no packet arrives on a given chain during a response-time interval, so
// the per-chain cache often survives for the acknowledgement:
//   p   = e^{-2aR(N/H - 1)}                       (Equation 20)
//   ack = p + (1 - p)(N/H + 1)/2                  (Equation 21)
//   C   = [C_BSD(N/H) + ack] / 2                  (Equation 22)
// Note Equation 21 counts a cache miss as just the (N/H+1)/2 chain scan —
// the paper's published 53.0 for H=19, R=0.2 s, N=2000 requires this form
// (including the extra cache probe would give 53.47).
#ifndef TCPDEMUX_ANALYTIC_SEQUENT_MODEL_H_
#define TCPDEMUX_ANALYTIC_SEQUENT_MODEL_H_

#include <cstdint>

#include "analytic/model.h"

namespace tcpdemux::analytic {

/// Equation 19: C_BSD(N/H). Clamped below at 1 (a lookup always examines
/// at least the target PCB; the formula dips below 1 when N < H).
[[nodiscard]] double sequent_cost_approx(double users,
                                         double chains) noexcept;

/// Equation 20: probability that no packet arrives on a given chain during
/// a response-time interval (so the chain's cache survives for the ack).
[[nodiscard]] double sequent_quiet_probability(double users, double chains,
                                               double rate,
                                               double response_time) noexcept;

/// Equation 21: expected PCBs examined for an acknowledgement.
[[nodiscard]] double sequent_ack_cost(double users, double chains, double rate,
                                      double response_time) noexcept;

/// Equation 22: overall expected PCBs examined per received packet.
[[nodiscard]] double sequent_cost_exact(double users, double chains,
                                        double rate,
                                        double response_time) noexcept;

class SequentModel final : public AnalyticModel {
 public:
  explicit SequentModel(double chains = 19.0) noexcept : chains_(chains) {}

  [[nodiscard]] SearchCost search_cost(
      const TpcaParams& params) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double chains() const noexcept { return chains_; }

 private:
  double chains_;
};

}  // namespace tcpdemux::analytic

#endif  // TCPDEMUX_ANALYTIC_SEQUENT_MODEL_H_
