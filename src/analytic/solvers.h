// Inverse and crossover solvers over the paper's models — the questions a
// capacity planner asks of §3's equations.
//
//   * How many chains do I need to keep PCB lookup under X reads?
//   * How many users can a given configuration carry at that budget?
//   * At what population does algorithm A stop beating algorithm B?
//     (Figure 14's crossovers, located precisely.)
#ifndef TCPDEMUX_ANALYTIC_SOLVERS_H_
#define TCPDEMUX_ANALYTIC_SOLVERS_H_

#include <cstdint>
#include <functional>
#include <optional>

namespace tcpdemux::analytic {

/// Smallest chain count H such that the Sequent algorithm's exact cost
/// (Equation 22) is <= `target_cost` for the given population. Returns
/// nullopt if even one PCB per chain cannot meet the target (i.e.
/// target < 1).
[[nodiscard]] std::optional<std::uint32_t> sequent_chains_for_target(
    double users, double rate, double response_time, double target_cost);

/// Largest user population the configuration carries at or under
/// `target_cost` (Equation 22 is monotone increasing in N). Returns 0 if
/// even one user exceeds the target.
[[nodiscard]] double sequent_users_for_target(double chains, double rate,
                                              double response_time,
                                              double target_cost);

/// Finds a crossover population: the smallest N in [lo, hi] where
/// cost_a(N) >= cost_b(N), given that a is cheaper at lo. Both cost
/// functions must be continuous; the difference must change sign at most
/// once in the bracket. Returns nullopt if a stays cheaper through hi.
[[nodiscard]] std::optional<double> crossover_population(
    const std::function<double(double)>& cost_a,
    const std::function<double(double)>& cost_b, double lo, double hi,
    double tolerance = 0.5);

}  // namespace tcpdemux::analytic

#endif  // TCPDEMUX_ANALYTIC_SOLVERS_H_
