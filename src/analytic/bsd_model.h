// BSD algorithm model — paper §3.1, Equation 1.
#ifndef TCPDEMUX_ANALYTIC_BSD_MODEL_H_
#define TCPDEMUX_ANALYTIC_BSD_MODEL_H_

#include "analytic/model.h"

namespace tcpdemux::analytic {

/// Equation 1: C_BSD(N) = 1 + (N^2 - 1) / (2N), approaching N/2.
/// The 1 is the always-probed single-entry cache; a miss (probability
/// (N-1)/N) scans (N+1)/2 PCBs on average.
[[nodiscard]] double bsd_cost(double users) noexcept;

/// Footnote 4: the probability that a transaction's query and the
/// transport-level acknowledgement of its response form a packet train
/// (no other user's packet intervenes during the response-time interval):
/// e^{-2 a R (N-1)}. About 1.9e-35 for N=2000, R=0.2 s. (The paper's text
/// prints "1.9e-3"; the exponent's "5" was lost in typesetting — 0.96^1999
/// is unambiguously ~1.9e-35, and §3.4 compares Sequent's 1.5% "quite
/// favorably" against it, which only makes sense for the tiny value.)
[[nodiscard]] double bsd_packet_train_probability(double users, double rate,
                                                  double response_time) noexcept;

class BsdModel final : public AnalyticModel {
 public:
  [[nodiscard]] SearchCost search_cost(
      const TpcaParams& params) const override;
  [[nodiscard]] std::string name() const override { return "bsd"; }
};

}  // namespace tcpdemux::analytic

#endif  // TCPDEMUX_ANALYTIC_BSD_MODEL_H_
