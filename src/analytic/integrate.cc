#include "analytic/integrate.h"

#include <cmath>

namespace tcpdemux::analytic {
namespace {

double simpson(double fa, double fm, double fb, double a, double b) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double b,
                double fa, double fm, double fb, double whole, double tol,
                int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(fa, flm, fm, a, m);
  const double right = simpson(fm, frm, fb, m, b);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 const IntegrateOptions& options) {
  if (a == b) return 0.0;
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(0.5 * (a + b));
  const double whole = simpson(fa, fm, fb, a, b);
  return adaptive(f, a, b, fa, fm, fb, whole, options.abs_tolerance,
                  options.max_depth);
}

double integrate_to_infinity(const std::function<double(double)>& f, double a,
                             const IntegrateOptions& options) {
  // t = a + u/(1-u); dt = du/(1-u)^2. As u -> 1 the weight diverges but the
  // exponential decay of f dominates; evaluate the endpoint as 0.
  const auto g = [&f, a](double u) -> double {
    if (u >= 1.0) return 0.0;
    const double one_minus = 1.0 - u;
    const double t = a + u / one_minus;
    return f(t) / (one_minus * one_minus);
  };
  return integrate(g, 0.0, 1.0, options);
}

}  // namespace tcpdemux::analytic
