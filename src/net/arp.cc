#include "net/arp.h"

#include <algorithm>

#include "net/byte_order.h"

namespace tcpdemux::net {
namespace {

constexpr std::uint16_t kHardwareEthernet = 1;
constexpr std::uint16_t kProtocolIpv4 = 0x0800;

}  // namespace

std::size_t ArpPacket::serialize(std::span<std::uint8_t> out) const {
  store_be16(out.data() + 0, kHardwareEthernet);
  store_be16(out.data() + 2, kProtocolIpv4);
  out[4] = 6;  // hardware address length
  out[5] = 4;  // protocol address length
  store_be16(out.data() + 6, static_cast<std::uint16_t>(op));
  for (std::size_t i = 0; i < 6; ++i) out[8 + i] = sender_mac.octets()[i];
  store_be32(out.data() + 14, sender_ip.value());
  for (std::size_t i = 0; i < 6; ++i) out[18 + i] = target_mac.octets()[i];
  store_be32(out.data() + 24, target_ip.value());
  return kSize;
}

std::optional<ArpPacket> ArpPacket::parse(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSize) return std::nullopt;
  if (load_be16(bytes.data() + 0) != kHardwareEthernet) return std::nullopt;
  if (load_be16(bytes.data() + 2) != kProtocolIpv4) return std::nullopt;
  if (bytes[4] != 6 || bytes[5] != 4) return std::nullopt;
  const std::uint16_t op = load_be16(bytes.data() + 6);
  if (op != 1 && op != 2) return std::nullopt;

  ArpPacket p;
  p.op = static_cast<Op>(op);
  std::array<std::uint8_t, 6> mac{};
  std::copy_n(bytes.begin() + 8, 6, mac.begin());
  p.sender_mac = MacAddr(mac);
  p.sender_ip = Ipv4Addr(load_be32(bytes.data() + 14));
  std::copy_n(bytes.begin() + 18, 6, mac.begin());
  p.target_mac = MacAddr(mac);
  p.target_ip = Ipv4Addr(load_be32(bytes.data() + 24));
  return p;
}

std::optional<MacAddr> ArpTable::resolve(Ipv4Addr ip, double now) const {
  const auto it = entries_.find(ip.value());
  if (it == entries_.end()) return std::nullopt;
  if (now - it->second.learned > options_.timeout) return std::nullopt;
  return it->second.mac;
}

void ArpTable::learn(Ipv4Addr ip, const MacAddr& mac, double now) {
  if (!entries_.contains(ip.value()) &&
      entries_.size() >= options_.max_entries) {
    // Evict the stalest entry.
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.learned < victim->second.learned) victim = it;
    }
    entries_.erase(victim);
  }
  entries_[ip.value()] = Entry{mac, now};
}

std::vector<std::uint8_t> ArpTable::make_request(Ipv4Addr target) const {
  ArpPacket packet;
  packet.op = ArpPacket::Op::kRequest;
  packet.sender_mac = our_mac_;
  packet.sender_ip = our_ip_;
  packet.target_mac = MacAddr();  // unknown
  packet.target_ip = target;
  std::vector<std::uint8_t> body(ArpPacket::kSize);
  packet.serialize(body);

  std::vector<std::uint8_t> frame(EthernetHeader::kSize + body.size());
  EthernetHeader header;
  header.dst = MacAddr::broadcast();
  header.src = our_mac_;
  header.ether_type = static_cast<std::uint16_t>(EtherType::kArp);
  header.serialize(frame);
  std::copy(body.begin(), body.end(),
            frame.begin() + EthernetHeader::kSize);
  return frame;
}

std::optional<std::vector<std::uint8_t>> ArpTable::handle_frame(
    std::span<const std::uint8_t> frame, double now) {
  const auto ether = EthernetHeader::parse(frame);
  if (!ether ||
      ether->ether_type != static_cast<std::uint16_t>(EtherType::kArp)) {
    return std::nullopt;
  }
  const auto arp = ArpPacket::parse(frame.subspan(EthernetHeader::kSize));
  if (!arp) return std::nullopt;

  learn(arp->sender_ip, arp->sender_mac, now);
  if (arp->op != ArpPacket::Op::kRequest || arp->target_ip != our_ip_) {
    return std::nullopt;
  }

  ArpPacket reply;
  reply.op = ArpPacket::Op::kReply;
  reply.sender_mac = our_mac_;
  reply.sender_ip = our_ip_;
  reply.target_mac = arp->sender_mac;
  reply.target_ip = arp->sender_ip;
  std::vector<std::uint8_t> body(ArpPacket::kSize);
  reply.serialize(body);

  std::vector<std::uint8_t> out(EthernetHeader::kSize + body.size());
  EthernetHeader header;
  header.dst = arp->sender_mac;
  header.src = our_mac_;
  header.ether_type = static_cast<std::uint16_t>(EtherType::kArp);
  header.serialize(out);
  std::copy(body.begin(), body.end(), out.begin() + EthernetHeader::kSize);
  return out;
}

std::size_t ArpTable::expire(double now) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.learned > options_.timeout) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace tcpdemux::net
