#include "net/packet.h"

#include "net/byte_order.h"
#include "net/checksum.h"

namespace tcpdemux::net {

std::optional<Packet> Packet::parse(std::span<const std::uint8_t> wire) {
  auto ip = Ipv4Header::parse(wire);
  if (!ip) return std::nullopt;
  if (ip->protocol != 6) return std::nullopt;
  if (ip->more_fragments || ip->fragment_offset != 0) return std::nullopt;

  const auto segment = wire.subspan(Ipv4Header::kSize,
                                    ip->total_length - Ipv4Header::kSize);
  auto tcp = TcpHeader::parse(segment);
  if (!tcp) return std::nullopt;
  if (tcp_checksum(ip->src, ip->dst, segment) != 0) return std::nullopt;

  Packet p;
  p.ip = *ip;
  p.tcp = std::move(*tcp);
  p.payload.assign(segment.begin() + static_cast<std::ptrdiff_t>(p.tcp.size()),
                   segment.end());
  return p;
}

std::vector<std::uint8_t> PacketBuilder::build() const {
  TcpHeader tcp = tcp_;
  tcp.src_port = src_.port;
  tcp.dst_port = dst_.port;

  Ipv4Header ip;
  ip.src = src_.addr;
  ip.dst = dst_.addr;
  ip.ttl = ttl_;
  ip.identification = ip_id_;
  const std::size_t segment_len = tcp.size() + payload_.size();
  ip.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + segment_len);

  std::vector<std::uint8_t> wire(ip.total_length);
  ip.serialize(std::span(wire).subspan(0, Ipv4Header::kSize));
  auto segment = std::span(wire).subspan(Ipv4Header::kSize);
  tcp.serialize(segment);
  for (std::size_t i = 0; i < payload_.size(); ++i) {
    segment[tcp.size() + i] = payload_[i];
  }
  const std::uint16_t sum = tcp_checksum(ip.src, ip.dst, segment);
  store_be16(segment.data() + 16, sum);
  return wire;
}

}  // namespace tcpdemux::net
