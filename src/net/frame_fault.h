// Deterministic malformed-frame generators for the robustness harness.
//
// The wire parsers promise to reject — without reading out of bounds —
// any byte string, however it was damaged. These helpers manufacture the
// damage systematically (every truncation point, seeded byte garbling)
// so the promise is tested as a sweep instead of hoping a fuzzer finds
// the one interesting length. Everything is seeded and reproducible: a
// failing case prints enough to rebuild the exact frame.
#ifndef TCPDEMUX_NET_FRAME_FAULT_H_
#define TCPDEMUX_NET_FRAME_FAULT_H_

#include <cstdint>
#include <span>
#include <vector>

namespace tcpdemux::net {

/// The first `len` bytes of `frame` (len may equal frame.size()).
[[nodiscard]] std::vector<std::uint8_t> truncated(
    std::span<const std::uint8_t> frame, std::size_t len);

/// Every prefix of `frame`, lengths 0 .. frame.size() inclusive — the
/// satellite requirement "every prefix length of a valid packet".
[[nodiscard]] std::vector<std::vector<std::uint8_t>> all_prefixes(
    std::span<const std::uint8_t> frame);

/// Copies `frame` and overwrites `flips` bytes at seeded-random positions
/// with seeded-random values (a burst-damage model; single-bit damage is
/// covered elsewhere by the checksum sweep).
[[nodiscard]] std::vector<std::uint8_t> garble_bytes(
    std::span<const std::uint8_t> frame, std::uint64_t seed,
    std::size_t flips);

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_FRAME_FAULT_H_
