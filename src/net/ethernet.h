// Ethernet II (DIX) framing: MAC addresses, EtherType, frame
// encapsulation/decapsulation.
//
// The demultiplexing study operates above IP, but a complete receive path
// starts at the frame: captures from real NICs are LINKTYPE_EN10MB, so the
// pcap tooling needs to strip (and synthesize) this layer.
#ifndef TCPDEMUX_NET_ETHERNET_H_
#define TCPDEMUX_NET_ETHERNET_H_

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace tcpdemux::net {

/// 48-bit MAC address.
class MacAddr {
 public:
  constexpr MacAddr() noexcept = default;
  constexpr explicit MacAddr(std::array<std::uint8_t, 6> octets) noexcept
      : octets_(octets) {}

  /// Parses colon notation ("02:00:0a:01:00:02"); nullopt on bad input.
  [[nodiscard]] static std::optional<MacAddr> parse(std::string_view text);

  /// A locally administered unicast address derived from an IPv4 host
  /// address — handy for synthesizing frames for simulated hosts.
  [[nodiscard]] static constexpr MacAddr from_ipv4(
      std::uint32_t ipv4_host_order) noexcept {
    return MacAddr({0x02, 0x00,
                    static_cast<std::uint8_t>(ipv4_host_order >> 24),
                    static_cast<std::uint8_t>(ipv4_host_order >> 16),
                    static_cast<std::uint8_t>(ipv4_host_order >> 8),
                    static_cast<std::uint8_t>(ipv4_host_order)});
  }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets()
      const noexcept {
    return octets_;
  }
  [[nodiscard]] constexpr bool is_broadcast() const noexcept {
    for (const std::uint8_t b : octets_) {
      if (b != 0xff) return false;
    }
    return true;
  }
  [[nodiscard]] constexpr bool is_multicast() const noexcept {
    return (octets_[0] & 0x01) != 0;
  }
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const MacAddr&,
                                   const MacAddr&) noexcept = default;

  static constexpr MacAddr broadcast() noexcept {
    return MacAddr({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

 private:
  std::array<std::uint8_t, 6> octets_{};
};

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
  kIpv6 = 0x86dd,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  /// Serializes the 14 header bytes into `out`. Returns bytes written.
  std::size_t serialize(std::span<std::uint8_t> out) const;

  /// Parses a header; nullopt if the buffer is shorter than 14 bytes.
  [[nodiscard]] static std::optional<EthernetHeader> parse(
      std::span<const std::uint8_t> bytes);
};

/// Wraps an IPv4 datagram in an Ethernet II frame.
[[nodiscard]] std::vector<std::uint8_t> ethernet_encapsulate(
    const MacAddr& dst, const MacAddr& src,
    std::span<const std::uint8_t> ipv4_datagram);

/// Wraps an IPv4 datagram in an 802.1Q-tagged frame on VLAN `vid`
/// (priority `pcp` in the top three TCI bits).
[[nodiscard]] std::vector<std::uint8_t> ethernet_encapsulate_vlan(
    const MacAddr& dst, const MacAddr& src, std::uint16_t vid,
    std::uint8_t pcp, std::span<const std::uint8_t> ipv4_datagram);

/// Strips the Ethernet header — and at most one 802.1Q tag — and returns
/// the IPv4 payload view, or nullopt if the frame is short or the (inner)
/// EtherType is not IPv4.
[[nodiscard]] std::optional<std::span<const std::uint8_t>>
ethernet_decapsulate_ipv4(std::span<const std::uint8_t> frame);

/// The VLAN id of a frame's single 802.1Q tag, if tagged.
[[nodiscard]] std::optional<std::uint16_t> ethernet_vlan_id(
    std::span<const std::uint8_t> frame);

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_ETHERNET_H_
