#include "net/fragment.h"

#include <algorithm>

namespace tcpdemux::net {

std::vector<std::vector<std::uint8_t>> fragment_packet(
    std::span<const std::uint8_t> wire, std::size_t mtu) {
  const auto header = Ipv4Header::parse(wire);
  if (!header) return {};
  if (header->total_length <= mtu) {
    return {std::vector<std::uint8_t>(wire.begin(),
                                      wire.begin() + header->total_length)};
  }
  if (header->dont_fragment) return {};
  // Every non-final fragment's payload must be a multiple of 8 bytes.
  if (mtu < Ipv4Header::kSize + 8) return {};
  const std::size_t chunk = ((mtu - Ipv4Header::kSize) / 8) * 8;

  const std::span<const std::uint8_t> payload =
      wire.subspan(Ipv4Header::kSize, header->total_length - Ipv4Header::kSize);

  std::vector<std::vector<std::uint8_t>> fragments;
  for (std::size_t start = 0; start < payload.size(); start += chunk) {
    const std::size_t len = std::min(chunk, payload.size() - start);
    const bool last = start + len == payload.size();

    Ipv4Header h = *header;
    h.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + len);
    h.fragment_offset =
        static_cast<std::uint16_t>(header->fragment_offset + start / 8);
    // All but the last new fragment have MF; the last inherits the
    // original's MF (we may be re-fragmenting a middle fragment).
    h.more_fragments = last ? header->more_fragments : true;

    std::vector<std::uint8_t> out(h.total_length);
    h.serialize(out);
    std::copy_n(payload.begin() + static_cast<std::ptrdiff_t>(start), len,
                out.begin() + Ipv4Header::kSize);
    fragments.push_back(std::move(out));
  }
  return fragments;
}

std::optional<std::vector<std::uint8_t>> Reassembler::offer(
    std::span<const std::uint8_t> wire, double now) {
  const auto header = Ipv4Header::parse(wire);
  if (!header) {
    ++rejected_;
    return std::nullopt;
  }
  if (!header->more_fragments && header->fragment_offset == 0) {
    // Whole datagram; nothing to do.
    return std::vector<std::uint8_t>(wire.begin(),
                                     wire.begin() + header->total_length);
  }

  const DatagramKey key{header->src.value(), header->dst.value(),
                        header->identification, header->protocol};
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    if (pending_.size() >= options_.max_datagrams) {
      ++rejected_;
      return std::nullopt;
    }
    it = pending_.emplace(key, Partial{}).first;
    it->second.first_seen = now;
  }
  Partial& partial = it->second;

  const std::size_t offset = static_cast<std::size_t>(header->fragment_offset) * 8;
  const std::size_t len = header->total_length - Ipv4Header::kSize;
  const std::size_t end = offset + len;
  if (end > options_.max_bytes) {
    ++rejected_;
    pending_.erase(it);  // datagram is hostile or broken: drop it all
    return std::nullopt;
  }

  if (end > partial.data.size()) {
    partial.data.resize(end);
    partial.present.resize(end, false);
  }
  std::copy_n(wire.begin() + Ipv4Header::kSize, len,
              partial.data.begin() + static_cast<std::ptrdiff_t>(offset));
  std::fill_n(partial.present.begin() + static_cast<std::ptrdiff_t>(offset),
              len, true);

  if (header->fragment_offset == 0) partial.header = *header;
  if (!header->more_fragments) partial.total_length = end;

  return try_complete(key, partial);
}

std::optional<std::vector<std::uint8_t>> Reassembler::try_complete(
    const DatagramKey& key, Partial& partial) {
  if (partial.total_length == 0 || !partial.header.has_value()) {
    return std::nullopt;
  }
  if (partial.data.size() < partial.total_length) return std::nullopt;
  for (std::size_t i = 0; i < partial.total_length; ++i) {
    if (!partial.present[i]) return std::nullopt;
  }

  Ipv4Header h = *partial.header;
  h.more_fragments = false;
  h.fragment_offset = 0;
  h.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + partial.total_length);

  std::vector<std::uint8_t> out(h.total_length);
  h.serialize(out);
  std::copy_n(partial.data.begin(),
              static_cast<std::ptrdiff_t>(partial.total_length),
              out.begin() + Ipv4Header::kSize);
  pending_.erase(key);
  return out;
}

std::size_t Reassembler::expire(double now) {
  std::size_t dropped = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.first_seen > options_.timeout) {
      it = pending_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace tcpdemux::net
