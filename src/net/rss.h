// RSS indirection table: the NIC-side map from a Toeplitz flow hash to a
// receive queue (= CPU shard).
//
// Real receive-side scaling (Microsoft RSS spec; Linux ethtool -X) never
// computes `hash % nqueues` in hardware. The NIC masks the low bits of the
// 32-bit Toeplitz hash and indexes a small host-programmable table of
// queue numbers (128 entries on most hardware). That indirection is what
// makes rebalancing possible without touching the hash key: the host
// rewrites table entries, not flow state. It is also exactly where
// mis-steering enters a sharded stack — a rewritten entry redirects live
// flows mid-connection, so packets for a PCB homed on shard A start
// arriving at shard B. core/sharded_demuxer and sim/nic_dispatch both
// build on this type; keeping it in net/ (below core in the include DAG)
// lets both sides share one steering definition.
#ifndef TCPDEMUX_NET_RSS_H_
#define TCPDEMUX_NET_RSS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "net/flow_key.h"
#include "net/hashers.h"

namespace tcpdemux::net {

/// Hash -> queue indirection table. Entry count is a power of two so the
/// hardware-faithful `hash & (entries - 1)` mask applies; the default 128
/// matches common NICs. Queue values are filled round-robin over
/// `queues`, the spec's default distribution.
class RssIndirectionTable {
 public:
  static constexpr std::uint32_t kDefaultEntries = 128;

  /// `queues` >= 1; `entries` rounded up to the next power of two and to
  /// at least `queues` so every queue appears at least once.
  explicit RssIndirectionTable(std::uint32_t queues,
                               std::uint32_t entries = kDefaultEntries);

  [[nodiscard]] std::uint32_t queues() const noexcept { return queues_; }
  [[nodiscard]] std::uint32_t entries() const noexcept {
    return static_cast<std::uint32_t>(table_.size());
  }

  /// The queue the NIC steers a frame with this 32-bit flow hash to.
  [[nodiscard]] std::uint32_t queue_for(std::uint32_t hash) const noexcept {
    return table_[hash & mask_];
  }

  [[nodiscard]] std::uint32_t entry(std::uint32_t index) const noexcept {
    return table_[index & mask_];
  }

  /// Host-side rewrite of one entry (ethtool -X weight change, flow
  /// director override, ...). `queue` must be < queues().
  void set_entry(std::uint32_t index, std::uint32_t queue) noexcept {
    table_[index & mask_] = queue;
  }

  /// Restores the round-robin default distribution.
  void rebalance() noexcept;

  [[nodiscard]] std::span<const std::uint32_t> raw() const noexcept {
    return table_;
  }

 private:
  std::uint32_t queues_;
  std::uint32_t mask_;
  std::vector<std::uint32_t> table_;
};

/// Steering decision used by the sharded demuxer and the simulated NIC:
/// Toeplitz (or any HashSpec) over the flow key, then the indirection
/// table. Both sides must call this one function so "home shard" means
/// the same thing everywhere.
[[nodiscard]] inline std::uint32_t rss_steer(
    const HashSpec& spec, const FlowKey& key,
    const RssIndirectionTable& table) noexcept {
  return table.queue_for(hash_flow(spec, key));
}

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_RSS_H_
