// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) with
// hardware acceleration where the ISA provides it.
//
// This is a *different code* from the IEEE 802.3 CRC-32 in hashers.cc
// (0xEDB88320): Castagnoli's polynomial has better Hamming distance at
// datagram lengths AND — decisively for a demultiplexer hot path — x86
// has burned it into silicon since Nehalem (SSE4.2 `crc32` instruction,
// ~1 cycle per 8 bytes) and ARMv8 since the 8.1 CRC extension. Software
// CRC-32 costs a table lookup per byte; the hardware instruction makes
// CRC-quality mixing as cheap as the naive folds the paper's era used.
//
// Dispatch: the hardware path is compiled behind
// `__attribute__((target(...)))` so the translation unit itself needs no
// special -m flags, and selected at runtime via CPU detection, cached in
// a function-local static. The portable table fallback is always built
// and is bit-identical — `crc32c_sw()` stays exposed so tests can assert
// hw == sw on every input. Like core/simd.h, this header is the single
// audited home for these intrinsics; the simd-discipline lint bans them
// elsewhere.
//
//   crc32c("123456789") == 0xE3069283   (canonical check value)
#ifndef TCPDEMUX_NET_CRC32C_H_
#define TCPDEMUX_NET_CRC32C_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

#if defined(__x86_64__) || defined(__i386__)
#define TCPDEMUX_CRC32C_HW_X86 1
#include <nmmintrin.h>  // NOLINT(simd-discipline)
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define TCPDEMUX_CRC32C_HW_ARM 1
#include <arm_acle.h>  // NOLINT(simd-discipline)
#endif

namespace tcpdemux::net {

namespace crc32c_detail {

// Byte-at-a-time table for the reflected Castagnoli polynomial. Built at
// compile time; plenty for 12-byte flow keys, and the correctness oracle
// for the hardware path.
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0x82f63b78u ^ (c >> 1)) : (c >> 1);
    }
    table[n] = c;
  }
  return table;
}

inline constexpr auto kTable = make_table();

#if defined(TCPDEMUX_CRC32C_HW_X86)
// SSE4.2 path. The target attribute scopes the ISA extension to this one
// function, so the rest of the binary still runs on pre-Nehalem parts.
__attribute__((target("sse4.2"))) inline std::uint32_t accumulate_hw(
    std::uint32_t crc, std::span<const std::uint8_t> bytes) noexcept {
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = static_cast<std::uint32_t>(
        _mm_crc32_u64(crc, chunk));  // NOLINT(simd-discipline)
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    std::uint32_t chunk;
    std::memcpy(&chunk, p, 4);
    crc = _mm_crc32_u32(crc, chunk);  // NOLINT(simd-discipline)
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);  // NOLINT(simd-discipline)
  }
  return crc;
}

inline bool hw_available_probe() noexcept {
  return __builtin_cpu_supports("sse4.2") != 0;
}
#elif defined(TCPDEMUX_CRC32C_HW_ARM)
inline std::uint32_t accumulate_hw(
    std::uint32_t crc, std::span<const std::uint8_t> bytes) noexcept {
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = __crc32cd(crc, chunk);  // NOLINT(simd-discipline)
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    std::uint32_t chunk;
    std::memcpy(&chunk, p, 4);
    crc = __crc32cw(crc, chunk);  // NOLINT(simd-discipline)
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = __crc32cb(crc, *p++);  // NOLINT(simd-discipline)
  }
  return crc;
}

// __ARM_FEATURE_CRC32 means the compiler was already told the target has
// the CRC extension, so no runtime probe is needed.
inline bool hw_available_probe() noexcept { return true; }
#endif

}  // namespace crc32c_detail

/// Portable table implementation; always available, bit-identical to the
/// hardware path. Exposed so tests can cross-check the two on any input.
[[nodiscard]] inline std::uint32_t crc32c_sw(
    std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t c = 0xffffffffu;
  for (const std::uint8_t b : bytes) {
    c = crc32c_detail::kTable[(c ^ b) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

/// True when the running CPU exposes the CRC32C instruction and this build
/// compiled the hardware path. Cached after the first call.
[[nodiscard]] inline bool crc32c_hw_available() noexcept {
#if defined(TCPDEMUX_CRC32C_HW_X86) || defined(TCPDEMUX_CRC32C_HW_ARM)
  static const bool available = crc32c_detail::hw_available_probe();
  return available;
#else
  return false;
#endif
}

/// Hardware CRC32C. Callers must check crc32c_hw_available() first; on
/// builds without a hardware path this falls back to the table so the
/// symbol always links.
[[nodiscard]] inline std::uint32_t crc32c_hw(
    std::span<const std::uint8_t> bytes) noexcept {
#if defined(TCPDEMUX_CRC32C_HW_X86) || defined(TCPDEMUX_CRC32C_HW_ARM)
  return crc32c_detail::accumulate_hw(0xffffffffu, bytes) ^ 0xffffffffu;
#else
  return crc32c_sw(bytes);
#endif
}

/// CRC-32C with runtime dispatch: hardware instruction when the CPU has
/// one, table otherwise. crc32c({"123456789"}) == 0xE3069283.
[[nodiscard]] inline std::uint32_t crc32c(
    std::span<const std::uint8_t> bytes) noexcept {
  return crc32c_hw_available() ? crc32c_hw(bytes) : crc32c_sw(bytes);
}

/// Which implementation crc32c() dispatches to on this machine:
/// "sse4.2", "armv8-crc", or "table". For bench metadata and tests.
[[nodiscard]] inline std::string_view crc32c_backend() noexcept {
#if defined(TCPDEMUX_CRC32C_HW_X86)
  return crc32c_hw_available() ? "sse4.2" : "table";
#elif defined(TCPDEMUX_CRC32C_HW_ARM)
  return "armv8-crc";
#else
  return "table";
#endif
}

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_CRC32C_H_
