#include "net/tcp_options.h"

#include "net/byte_order.h"

namespace tcpdemux::net {
namespace {

constexpr std::uint8_t kEol = 0;
constexpr std::uint8_t kNopByte = 1;

}  // namespace

std::optional<std::vector<TcpOption>> parse_tcp_options(
    std::span<const std::uint8_t> blob) {
  std::vector<TcpOption> out;
  std::size_t i = 0;
  while (i < blob.size()) {
    const std::uint8_t kind = blob[i];
    if (kind == kEol) break;
    if (kind == kNopByte) {
      ++i;
      continue;
    }
    if (i + 1 >= blob.size()) return std::nullopt;  // kind without length
    const std::uint8_t len = blob[i + 1];
    if (len < 2 || i + len > blob.size()) return std::nullopt;
    const std::uint8_t* body = blob.data() + i + 2;

    switch (static_cast<TcpOptionKind>(kind)) {
      case TcpOptionKind::kMss: {
        if (len != 4) return std::nullopt;
        TcpOption o;
        o.kind = TcpOptionKind::kMss;
        o.mss = load_be16(body);
        out.push_back(o);
        break;
      }
      case TcpOptionKind::kWindowScale: {
        if (len != 3) return std::nullopt;
        TcpOption o;
        o.kind = TcpOptionKind::kWindowScale;
        o.shift = body[0];
        out.push_back(o);
        break;
      }
      case TcpOptionKind::kSackPermitted: {
        if (len != 2) return std::nullopt;
        TcpOption o;
        o.kind = TcpOptionKind::kSackPermitted;
        out.push_back(o);
        break;
      }
      case TcpOptionKind::kTimestamps: {
        if (len != 10) return std::nullopt;
        TcpOption o;
        o.kind = TcpOptionKind::kTimestamps;
        o.ts_value = load_be32(body);
        o.ts_echo_reply = load_be32(body + 4);
        out.push_back(o);
        break;
      }
      case TcpOptionKind::kEndOfOptions:
      case TcpOptionKind::kNop:
        break;  // handled above; unreachable
      default:
        break;  // unknown kind with valid length: skip
    }
    i += len;
  }
  return out;
}

std::vector<std::uint8_t> serialize_tcp_options(
    std::span<const TcpOption> options) {
  std::vector<std::uint8_t> out;
  for (const TcpOption& o : options) {
    switch (o.kind) {
      case TcpOptionKind::kMss:
        out.push_back(static_cast<std::uint8_t>(TcpOptionKind::kMss));
        out.push_back(4);
        out.push_back(static_cast<std::uint8_t>(o.mss >> 8));
        out.push_back(static_cast<std::uint8_t>(o.mss & 0xff));
        break;
      case TcpOptionKind::kWindowScale:
        out.push_back(static_cast<std::uint8_t>(TcpOptionKind::kWindowScale));
        out.push_back(3);
        out.push_back(o.shift);
        break;
      case TcpOptionKind::kSackPermitted:
        out.push_back(
            static_cast<std::uint8_t>(TcpOptionKind::kSackPermitted));
        out.push_back(2);
        break;
      case TcpOptionKind::kTimestamps: {
        out.push_back(static_cast<std::uint8_t>(TcpOptionKind::kTimestamps));
        out.push_back(10);
        std::uint8_t buf[8];
        store_be32(buf, o.ts_value);
        store_be32(buf + 4, o.ts_echo_reply);
        out.insert(out.end(), buf, buf + 8);
        break;
      }
      case TcpOptionKind::kEndOfOptions:
      case TcpOptionKind::kNop:
        break;  // padding computed below
    }
  }
  while (out.size() % 4 != 0) out.push_back(kEol);
  return out;
}

std::optional<std::uint16_t> find_mss(std::span<const TcpOption> options) {
  for (const TcpOption& o : options) {
    if (o.kind == TcpOptionKind::kMss) return o.mss;
  }
  return std::nullopt;
}

}  // namespace tcpdemux::net
