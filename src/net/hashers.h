// Hash functions over TCP/IPv4 flow keys.
//
// The paper closes §3.5 with "efficient hash functions for protocol
// addresses are well known [Jai89, McK91]". This module provides the
// classic candidates from that literature plus two modern references:
//
//   kBsdModulo        (faddr + fport + lport) — the historical BSD inpcb hash
//   kXorFold          XOR-fold of all 96 key bits into 32
//   kAddFold          16-bit one's-complement-style additive fold [Jai89]
//   kMultiplicative   Fibonacci/Knuth multiplicative hash of the folded key
//   kCrc32            CRC-32 (IEEE 802.3 polynomial) over the 12 key bytes,
//                     Jain's recommendation for address lookup [Jai89]
//   kJenkins          Bob Jenkins' 96-bit mix (lookup2 final mix)
//   kToeplitz         Microsoft RSS Toeplitz hash with the canonical key —
//                     what contemporary NIC receive-side scaling uses
//
// Every hasher returns a full-width 32-bit value; chain selection reduces it
// modulo the chain count (the Sequent algorithm's installation default was a
// prime, 19, which repairs weak low-order bits in the cheap folds).
#ifndef TCPDEMUX_NET_HASHERS_H_
#define TCPDEMUX_NET_HASHERS_H_

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "net/flow_key.h"

namespace tcpdemux::net {

enum class HasherKind : std::uint8_t {
  kBsdModulo,
  kXorFold,
  kAddFold,
  kMultiplicative,
  kCrc32,
  kJenkins,
  kToeplitz,
};

/// All hasher kinds, for iteration in tests and benches.
inline constexpr std::array<HasherKind, 7> kAllHashers = {
    HasherKind::kBsdModulo,      HasherKind::kXorFold,
    HasherKind::kAddFold,        HasherKind::kMultiplicative,
    HasherKind::kCrc32,          HasherKind::kJenkins,
    HasherKind::kToeplitz,
};

/// Short stable name ("crc32", "toeplitz", ...).
[[nodiscard]] std::string_view hasher_name(HasherKind kind) noexcept;

/// Hashes `key` with the chosen function. Full 32-bit result.
[[nodiscard]] std::uint32_t hash_flow(HasherKind kind,
                                      const FlowKey& key) noexcept;

/// Convenience: chain index in [0, chains).
[[nodiscard]] inline std::uint32_t hash_chain(HasherKind kind,
                                              const FlowKey& key,
                                              std::uint32_t chains) noexcept {
  return hash_flow(kind, key) % chains;
}

/// CRC-32 (IEEE, reflected) over arbitrary bytes; exposed for tests.
[[nodiscard]] std::uint32_t crc32_ieee(
    std::span<const std::uint8_t> bytes) noexcept;

/// Toeplitz hash over arbitrary input with a caller-supplied key; exposed
/// so tests can check against the Microsoft RSS verification vectors.
[[nodiscard]] std::uint32_t toeplitz_hash(
    std::span<const std::uint8_t> input,
    std::span<const std::uint8_t> key) noexcept;

/// The canonical 40-byte RSS verification key from the Microsoft RSS spec.
[[nodiscard]] std::span<const std::uint8_t> rss_default_key() noexcept;

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_HASHERS_H_
