// Hash functions over TCP/IPv4 flow keys.
//
// The paper closes §3.5 with "efficient hash functions for protocol
// addresses are well known [Jai89, McK91]". This module provides the
// classic candidates from that literature plus three modern references:
//
//   kBsdModulo        (faddr + fport + lport) — the historical BSD inpcb hash
//   kXorFold          XOR-fold of all 96 key bits into 32
//   kAddFold          16-bit one's-complement-style additive fold [Jai89]
//   kMultiplicative   Fibonacci/Knuth multiplicative hash of the folded key
//   kCrc32            CRC-32 (IEEE 802.3 polynomial) over the 12 key bytes,
//                     Jain's recommendation for address lookup [Jai89]
//   kCrc32c           CRC-32C (Castagnoli) over the same bytes — identical
//                     mixing pedigree, but x86 SSE4.2 / ARMv8 execute it in
//                     hardware (net/crc32c.h), so CRC-quality hashing costs
//                     about as much as the naive folds
//   kJenkins          Bob Jenkins' 96-bit mix (lookup2 final mix)
//   kToeplitz         Microsoft RSS Toeplitz hash with the canonical key —
//                     what contemporary NIC receive-side scaling uses
//   kSipHash          SipHash-1-3 over the 12 key bytes — the keyed PRF
//                     production hash tables adopted once hash-flooding
//                     attacks [AuB12] made unkeyed hashes a DoS vector
//
// Every hasher returns a full-width 32-bit value; chain selection reduces it
// modulo the chain count (the Sequent algorithm's installation default was a
// prime, 19, which repairs weak low-order bits in the cheap folds).
//
// Keyed hashing: `HashSpec` pairs a hasher with an optional 32-bit seed.
// Seed 0 is bit-identical to the unkeyed functions, so every paper-fidelity
// result is untouched by default. A non-zero seed changes the hash family:
//
//   * kSipHash derives its 128-bit SipHash key from the seed, so the full
//     32-bit hash is unpredictable without the seed — collisions cannot be
//     precomputed at all;
//   * every other kind gets a seeded avalanche post-mix,
//     mix32_avalanche(h ^ f(seed)). That randomizes which *chain or slot* a
//     key lands on (defeating chain-targeting floods), but keys whose full
//     32-bit unkeyed hash already collides still collide under every seed —
//     an attacker who can solve the base fold (trivial for xor_fold) defeats
//     the post-mix. Deployments facing that adversary use kSipHash.
#ifndef TCPDEMUX_NET_HASHERS_H_
#define TCPDEMUX_NET_HASHERS_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "net/flow_key.h"

namespace tcpdemux::net {

enum class HasherKind : std::uint8_t {
  kBsdModulo,
  kXorFold,
  kAddFold,
  kMultiplicative,
  kCrc32,
  kCrc32c,
  kJenkins,
  kToeplitz,
  kSipHash,
};

/// All hasher kinds, for iteration in tests and benches.
inline constexpr std::array<HasherKind, 9> kAllHashers = {
    HasherKind::kBsdModulo,      HasherKind::kXorFold,
    HasherKind::kAddFold,        HasherKind::kMultiplicative,
    HasherKind::kCrc32,          HasherKind::kCrc32c,
    HasherKind::kJenkins,        HasherKind::kToeplitz,
    HasherKind::kSipHash,
};

/// Short stable name ("crc32", "siphash", ...).
[[nodiscard]] std::string_view hasher_name(HasherKind kind) noexcept;

/// Hashes `key` with the chosen function, unkeyed (seed 0). Full 32-bit
/// result.
[[nodiscard]] std::uint32_t hash_flow(HasherKind kind,
                                      const FlowKey& key) noexcept;

/// Convenience: chain index in [0, chains).
[[nodiscard]] inline std::uint32_t hash_chain(HasherKind kind,
                                              const FlowKey& key,
                                              std::uint32_t chains) noexcept {
  return hash_flow(kind, key) % chains;
}

/// A hasher plus an optional seed. Implicitly constructible from a bare
/// HasherKind (seed 0 == the unkeyed function, bit for bit), so every
/// pre-seed call site and Options aggregate keeps compiling unchanged.
struct HashSpec {
  HasherKind kind = HasherKind::kXorFold;
  std::uint32_t seed = 0;

  constexpr HashSpec() noexcept = default;
  // NOLINTNEXTLINE: implicit by design, see above.
  constexpr HashSpec(HasherKind k, std::uint32_t s = 0) noexcept
      : kind(k), seed(s) {}

  [[nodiscard]] constexpr bool keyed() const noexcept { return seed != 0; }
  friend constexpr bool operator==(const HashSpec&,
                                   const HashSpec&) noexcept = default;
};

/// Hashes `key` under `spec`. spec.seed == 0 delegates to the unkeyed
/// hash_flow(kind, key) exactly.
[[nodiscard]] std::uint32_t hash_flow(const HashSpec& spec,
                                      const FlowKey& key) noexcept;

[[nodiscard]] inline std::uint32_t hash_chain(const HashSpec& spec,
                                              const FlowKey& key,
                                              std::uint32_t chains) noexcept {
  return hash_flow(spec, key) % chains;
}

/// Display name: "crc32" unkeyed, "crc32@1f2e" keyed (seed in hex) —
/// the same token the registry spec grammar accepts.
[[nodiscard]] std::string hash_spec_name(const HashSpec& spec);

/// 32-bit avalanche finalizer (Prospector's low-bias constants). Used by
/// the seeded post-mix and by the flat table's index derivation; exposed so
/// tests and attack-crafting code can reproduce slot indices exactly.
[[nodiscard]] constexpr std::uint32_t mix32_avalanche(std::uint32_t x) noexcept {
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return x;
}

/// Deterministic seed rotation for rehash-on-overload: a splitmix32 step
/// that never returns 0 (0 means "unkeyed"). Reproducible by design — the
/// repo bans ambient randomness so attack experiments replay exactly.
[[nodiscard]] std::uint32_t next_seed(std::uint32_t seed) noexcept;

/// SipHash with c compression and d finalization rounds per message block
/// (SipHash-c-d) over arbitrary bytes, 64-bit key (k0, k1). Exposed with
/// round counts so tests can pin the official SipHash-2-4 vectors as well
/// as the SipHash-1-3 variant the flow hasher uses.
[[nodiscard]] std::uint64_t siphash(std::span<const std::uint8_t> data,
                                    std::uint64_t k0, std::uint64_t k1,
                                    int c_rounds, int d_rounds) noexcept;

/// CRC-32 (IEEE, reflected) over arbitrary bytes; exposed for tests.
[[nodiscard]] std::uint32_t crc32_ieee(
    std::span<const std::uint8_t> bytes) noexcept;

/// Toeplitz hash over arbitrary input with a caller-supplied key; exposed
/// so tests can check against the Microsoft RSS verification vectors.
[[nodiscard]] std::uint32_t toeplitz_hash(
    std::span<const std::uint8_t> input,
    std::span<const std::uint8_t> key) noexcept;

/// The canonical 40-byte RSS verification key from the Microsoft RSS spec.
[[nodiscard]] std::span<const std::uint8_t> rss_default_key() noexcept;

/// Serialized RSS input for a TCP/IPv4 flow: source address, destination
/// address, source port, destination port — from the *packet's*
/// perspective (source = our foreign half). This is the byte string both
/// Toeplitz paths hash; exposed so differential tests can feed the
/// identical input to the key-schedule table and the caller-key oracle.
[[nodiscard]] std::array<std::uint8_t, 12> rss_flow_input(
    const FlowKey& key) noexcept;

/// The seeded post-mix every non-SipHash hasher applies when
/// HashSpec::seed != 0: mix32_avalanche(h ^ f(seed)), f = one splitmix64
/// step over the seed. Exposed so tests can compose the keyed table path
/// from the unkeyed oracle and prove both Toeplitz paths stay bit-identical
/// under @hexseed rotation.
[[nodiscard]] std::uint32_t seeded_hash_mix(std::uint32_t hash,
                                            std::uint32_t seed) noexcept;

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_HASHERS_H_
