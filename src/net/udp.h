// UDP header (RFC 768).
//
// The send/receive cache the paper analyzes in §3.3 was proposed by
// Partridge & Pink for *UDP* ("A faster UDP", [PP91]); UDP demultiplexing
// is the same 96-bit-key problem with a two-field header. This module
// supplies the wire format so UDP traffic can flow through the same flow
// keys and demultiplexers.
#ifndef TCPDEMUX_NET_UDP_H_
#define TCPDEMUX_NET_UDP_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ip_addr.h"

namespace tcpdemux::net {

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = kSize;  ///< header + payload

  /// Serializes the header with the checksum zeroed; the caller patches
  /// bytes 6..7 with udp_checksum over pseudo-header + datagram.
  std::size_t serialize(std::span<std::uint8_t> out) const;

  /// Parses a header; nullopt on short buffer or a length field smaller
  /// than the header or beyond the buffer.
  [[nodiscard]] static std::optional<UdpHeader> parse(
      std::span<const std::uint8_t> bytes);
};

/// UDP checksum: IPv4 pseudo-header (protocol 17) + datagram. Returns
/// 0xffff in place of an all-zero result, as RFC 768 requires (zero on
/// the wire means "no checksum").
[[nodiscard]] std::uint16_t udp_checksum(
    Ipv4Addr src, Ipv4Addr dst,
    std::span<const std::uint8_t> datagram) noexcept;

/// Builds a complete UDP/IPv4 wire packet with both checksums.
[[nodiscard]] std::vector<std::uint8_t> build_udp_packet(
    Ipv4Addr src, std::uint16_t src_port, Ipv4Addr dst,
    std::uint16_t dst_port, std::span<const std::uint8_t> payload);

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_UDP_H_
