#include "net/udp.h"

#include <algorithm>
#include <vector>

#include "net/byte_order.h"
#include "net/checksum.h"
#include "net/headers.h"

namespace tcpdemux::net {

std::size_t UdpHeader::serialize(std::span<std::uint8_t> out) const {
  store_be16(out.data() + 0, src_port);
  store_be16(out.data() + 2, dst_port);
  store_be16(out.data() + 4, length);
  store_be16(out.data() + 6, 0);  // checksum patched by caller
  return kSize;
}

std::optional<UdpHeader> UdpHeader::parse(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = load_be16(bytes.data() + 0);
  h.dst_port = load_be16(bytes.data() + 2);
  h.length = load_be16(bytes.data() + 4);
  if (h.length < kSize || h.length > bytes.size()) return std::nullopt;
  return h;
}

std::uint16_t udp_checksum(Ipv4Addr src, Ipv4Addr dst,
                           std::span<const std::uint8_t> datagram) noexcept {
  ChecksumAccumulator acc;
  acc.add_word(static_cast<std::uint16_t>(src.value() >> 16));
  acc.add_word(static_cast<std::uint16_t>(src.value() & 0xffff));
  acc.add_word(static_cast<std::uint16_t>(dst.value() >> 16));
  acc.add_word(static_cast<std::uint16_t>(dst.value() & 0xffff));
  acc.add_word(17);  // protocol: UDP
  acc.add_word(static_cast<std::uint16_t>(datagram.size()));
  acc.add(datagram);
  const std::uint16_t sum = acc.finish();
  return sum == 0 ? 0xffff : sum;  // RFC 768: transmitted zero is "none"
}

std::vector<std::uint8_t> build_udp_packet(
    Ipv4Addr src, std::uint16_t src_port, Ipv4Addr dst,
    std::uint16_t dst_port, std::span<const std::uint8_t> payload) {
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());

  Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = 17;
  ip.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + udp.length);

  std::vector<std::uint8_t> wire(ip.total_length);
  ip.serialize(wire);
  auto datagram = std::span(wire).subspan(Ipv4Header::kSize);
  udp.serialize(datagram);
  std::copy(payload.begin(), payload.end(),
            datagram.begin() + UdpHeader::kSize);
  const std::uint16_t sum = udp_checksum(src, dst, datagram);
  store_be16(datagram.data() + 6, sum);
  return wire;
}

}  // namespace tcpdemux::net
