#include "net/checksum.h"

#include "net/byte_order.h"

namespace tcpdemux::net {

void ChecksumAccumulator::add(std::span<const std::uint8_t> bytes) noexcept {
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum_ += load_be16(bytes.data() + i);
  }
  if (i < bytes.size()) {
    sum_ += static_cast<std::uint16_t>(bytes[i]) << 8;
  }
}

std::uint16_t ChecksumAccumulator::finish() const noexcept {
  std::uint64_t s = sum_;
  while (s >> 16) {
    s = (s & 0xffff) + (s >> 16);
  }
  return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) noexcept {
  ChecksumAccumulator acc;
  acc.add(bytes);
  return acc.finish();
}

std::uint16_t tcp_checksum(Ipv4Addr src, Ipv4Addr dst,
                           std::span<const std::uint8_t> segment) noexcept {
  ChecksumAccumulator acc;
  acc.add_word(static_cast<std::uint16_t>(src.value() >> 16));
  acc.add_word(static_cast<std::uint16_t>(src.value() & 0xffff));
  acc.add_word(static_cast<std::uint16_t>(dst.value() >> 16));
  acc.add_word(static_cast<std::uint16_t>(dst.value() & 0xffff));
  acc.add_word(6);  // protocol: TCP
  acc.add_word(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish();
}

bool verify_checksum(std::span<const std::uint8_t> bytes) noexcept {
  return internet_checksum(bytes) == 0;
}

}  // namespace tcpdemux::net
