// ARP for Ethernet/IPv4 (RFC 826): packet format and a resolution cache.
//
// Completes the link layer: a host on the simulated LAN resolves its
// peer's MAC before it can frame IPv4 traffic. The table follows the
// classic shape — learn aggressively from observed traffic, expire on a
// timer, bound the entry count.
#ifndef TCPDEMUX_NET_ARP_H_
#define TCPDEMUX_NET_ARP_H_

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "net/ethernet.h"
#include "net/ip_addr.h"

namespace tcpdemux::net {

/// An Ethernet/IPv4 ARP packet (28 bytes on the wire).
struct ArpPacket {
  static constexpr std::size_t kSize = 28;

  enum class Op : std::uint16_t { kRequest = 1, kReply = 2 };

  Op op = Op::kRequest;
  MacAddr sender_mac;
  Ipv4Addr sender_ip;
  MacAddr target_mac;  ///< zero in requests
  Ipv4Addr target_ip;

  std::size_t serialize(std::span<std::uint8_t> out) const;

  /// Parses an ARP packet; nullopt on short input or non-Ethernet/IPv4
  /// hardware/protocol types.
  [[nodiscard]] static std::optional<ArpPacket> parse(
      std::span<const std::uint8_t> bytes);
};

/// The neighbor cache plus the request/reply protocol logic for one host.
class ArpTable {
 public:
  struct Options {
    double timeout = 300.0;      ///< entry lifetime, seconds
    std::size_t max_entries = 512;
  };

  ArpTable(MacAddr our_mac, Ipv4Addr our_ip)
      : ArpTable(our_mac, our_ip, Options()) {}
  ArpTable(MacAddr our_mac, Ipv4Addr our_ip, Options options)
      : our_mac_(our_mac), our_ip_(our_ip), options_(options) {}

  /// Known MAC for `ip`, or nullopt (then broadcast make_request()).
  [[nodiscard]] std::optional<MacAddr> resolve(Ipv4Addr ip,
                                               double now) const;

  /// Records a neighbor. The oldest entry is evicted at capacity.
  void learn(Ipv4Addr ip, const MacAddr& mac, double now);

  /// Builds a broadcast ARP request frame for `target`.
  [[nodiscard]] std::vector<std::uint8_t> make_request(Ipv4Addr target) const;

  /// Processes an arriving Ethernet frame. If it is an ARP packet, learns
  /// the sender and — when it is a request for our address — returns the
  /// reply frame to transmit. Non-ARP frames return nullopt untouched.
  std::optional<std::vector<std::uint8_t>> handle_frame(
      std::span<const std::uint8_t> frame, double now);

  /// Drops entries older than the timeout; returns how many.
  std::size_t expire(double now);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    MacAddr mac;
    double learned = 0.0;
  };

  MacAddr our_mac_;
  Ipv4Addr our_ip_;
  Options options_;
  std::map<std::uint32_t, Entry> entries_;  ///< keyed by IPv4 host order
};

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_ARP_H_
