#include "net/headers.h"

#include "net/byte_order.h"
#include "net/checksum.h"

namespace tcpdemux::net {

std::size_t Ipv4Header::serialize(std::span<std::uint8_t> out) const {
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = dscp_ecn;
  store_be16(out.data() + 2, total_length);
  store_be16(out.data() + 4, identification);
  std::uint16_t frag = fragment_offset & 0x1fff;
  if (dont_fragment) frag |= 0x4000;
  if (more_fragments) frag |= 0x2000;
  store_be16(out.data() + 6, frag);
  out[8] = ttl;
  out[9] = protocol;
  store_be16(out.data() + 10, 0);  // checksum placeholder
  store_be32(out.data() + 12, src.value());
  store_be32(out.data() + 16, dst.value());
  const std::uint16_t sum = internet_checksum(out.subspan(0, kSize));
  store_be16(out.data() + 10, sum);
  return kSize;
}

std::optional<Ipv4Header> Ipv4Header::parse(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSize) return std::nullopt;
  if ((bytes[0] >> 4) != 4) return std::nullopt;
  if ((bytes[0] & 0x0f) != 5) return std::nullopt;  // options unsupported
  if (!verify_checksum(bytes.subspan(0, kSize))) return std::nullopt;

  Ipv4Header h;
  h.dscp_ecn = bytes[1];
  h.total_length = load_be16(bytes.data() + 2);
  if (h.total_length < kSize || h.total_length > bytes.size()) {
    return std::nullopt;
  }
  h.identification = load_be16(bytes.data() + 4);
  const std::uint16_t frag = load_be16(bytes.data() + 6);
  h.dont_fragment = (frag & 0x4000) != 0;
  h.more_fragments = (frag & 0x2000) != 0;
  h.fragment_offset = frag & 0x1fff;
  h.ttl = bytes[8];
  h.protocol = bytes[9];
  h.src = Ipv4Addr(load_be32(bytes.data() + 12));
  h.dst = Ipv4Addr(load_be32(bytes.data() + 16));
  return h;
}

std::size_t TcpHeader::serialize(std::span<std::uint8_t> out) const {
  store_be16(out.data() + 0, src_port);
  store_be16(out.data() + 2, dst_port);
  store_be32(out.data() + 4, seq);
  store_be32(out.data() + 8, ack);
  const std::size_t data_offset_words = size() / 4;
  out[12] = static_cast<std::uint8_t>(data_offset_words << 4);
  out[13] = flags;
  store_be16(out.data() + 14, window);
  store_be16(out.data() + 16, 0);  // checksum patched by caller
  store_be16(out.data() + 18, urgent_pointer);
  for (std::size_t i = 0; i < options.size(); ++i) {
    out[kMinSize + i] = options[i];
  }
  return size();
}

std::optional<TcpHeader> TcpHeader::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kMinSize) return std::nullopt;
  const std::size_t data_offset =
      static_cast<std::size_t>(bytes[12] >> 4) * 4;
  if (data_offset < kMinSize || data_offset > bytes.size()) {
    return std::nullopt;
  }
  TcpHeader h;
  h.src_port = load_be16(bytes.data() + 0);
  h.dst_port = load_be16(bytes.data() + 2);
  h.seq = load_be32(bytes.data() + 4);
  h.ack = load_be32(bytes.data() + 8);
  h.flags = bytes[13];
  h.window = load_be16(bytes.data() + 14);
  h.urgent_pointer = load_be16(bytes.data() + 18);
  h.options.assign(bytes.begin() + kMinSize,
                   bytes.begin() + static_cast<std::ptrdiff_t>(data_offset));
  return h;
}

std::string TcpHeader::flags_to_string() const {
  struct Named {
    TcpFlag flag;
    const char* name;
  };
  static constexpr Named kNames[] = {
      {TcpFlag::kFin, "FIN"}, {TcpFlag::kSyn, "SYN"}, {TcpFlag::kRst, "RST"},
      {TcpFlag::kPsh, "PSH"}, {TcpFlag::kAck, "ACK"}, {TcpFlag::kUrg, "URG"},
  };
  std::string out;
  for (const auto& [flag, name] : kNames) {
    if (has(flag)) {
      if (!out.empty()) out += '|';
      out += name;
    }
  }
  if (out.empty()) out = "none";
  return out;
}

}  // namespace tcpdemux::net
