// Typed TCP option parsing and serialization (RFC 793 §3.1, RFC 1323,
// RFC 2018).
//
// TcpHeader carries options as an opaque 4-byte-padded blob so headers
// round-trip exactly; this module interprets that blob. Supported kinds:
// EOL, NOP, MSS, window scale, SACK-permitted, and timestamps — the set a
// 1992-adjacent stack would meet plus the two RFC 1323 options any modern
// trace contains.
#ifndef TCPDEMUX_NET_TCP_OPTIONS_H_
#define TCPDEMUX_NET_TCP_OPTIONS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace tcpdemux::net {

enum class TcpOptionKind : std::uint8_t {
  kEndOfOptions = 0,
  kNop = 1,
  kMss = 2,
  kWindowScale = 3,
  kSackPermitted = 4,
  kTimestamps = 8,
};

/// One parsed option. Fields beyond `kind` are meaningful only for the
/// kinds that carry them.
struct TcpOption {
  TcpOptionKind kind = TcpOptionKind::kNop;
  std::uint16_t mss = 0;            ///< kMss
  std::uint8_t shift = 0;           ///< kWindowScale
  std::uint32_t ts_value = 0;       ///< kTimestamps
  std::uint32_t ts_echo_reply = 0;  ///< kTimestamps

  friend bool operator==(const TcpOption&, const TcpOption&) = default;
};

/// Parses an option blob (as stored in TcpHeader::options). NOPs are
/// skipped; parsing stops at EOL. Returns nullopt on any malformed
/// option: a length byte of 0 or 1, a length that overruns the buffer, or
/// a wrong length for a known kind. Unknown kinds with a valid length are
/// skipped silently (as receivers must).
[[nodiscard]] std::optional<std::vector<TcpOption>> parse_tcp_options(
    std::span<const std::uint8_t> blob);

/// Serializes options to a blob padded with EOL to a 4-byte multiple,
/// ready for TcpHeader::options. NOP and EOL inputs are ignored (padding
/// is computed here).
[[nodiscard]] std::vector<std::uint8_t> serialize_tcp_options(
    std::span<const TcpOption> options);

/// Convenience: finds the MSS option, if present.
[[nodiscard]] std::optional<std::uint16_t> find_mss(
    std::span<const TcpOption> options);

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_TCP_OPTIONS_H_
