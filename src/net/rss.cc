#include "net/rss.h"

#include <bit>

namespace tcpdemux::net {

RssIndirectionTable::RssIndirectionTable(std::uint32_t queues,
                                        std::uint32_t entries)
    : queues_(queues == 0 ? 1 : queues) {
  std::uint32_t want = entries < queues_ ? queues_ : entries;
  want = std::bit_ceil(want);
  mask_ = want - 1;
  table_.resize(want);
  rebalance();
}

void RssIndirectionTable::rebalance() noexcept {
  for (std::size_t i = 0; i < table_.size(); ++i) {
    table_[i] = static_cast<std::uint32_t>(i % queues_);
  }
}

}  // namespace tcpdemux::net
