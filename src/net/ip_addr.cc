#include "net/ip_addr.h"

#include <array>
#include <charconv>

namespace tcpdemux::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size()) return std::nullopt;
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    std::uint32_t value = 0;
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = value;
    pos = static_cast<std::size_t>(ptr - text.data());
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Addr(static_cast<std::uint8_t>(octets[0]),
                  static_cast<std::uint8_t>(octets[1]),
                  static_cast<std::uint8_t>(octets[2]),
                  static_cast<std::uint8_t>(octets[3]));
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((addr_ >> shift) & 0xff);
    if (shift != 0) out += '.';
  }
  return out;
}

}  // namespace tcpdemux::net
