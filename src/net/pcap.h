// Classic libpcap file format (the pre-pcapng .pcap every tool reads).
//
// Generated workload traces can be exported as capture files and inspected
// with tcpdump/wireshark; captures from elsewhere can be replayed through
// the demultiplexers. Packets are written with LINKTYPE_RAW (101): the
// record payload is the raw IPv4 datagram, exactly what this library's
// Packet::parse consumes.
#ifndef TCPDEMUX_NET_PCAP_H_
#define TCPDEMUX_NET_PCAP_H_

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

namespace tcpdemux::net {

/// One captured record: a timestamp and the raw bytes.
struct PcapRecord {
  double timestamp = 0.0;  ///< seconds (fractional)
  std::vector<std::uint8_t> bytes;

  friend bool operator==(const PcapRecord&, const PcapRecord&) = default;
};

/// Streams pcap records to an ostream. Writes the global header on
/// construction (magic 0xa1b2c3d4, version 2.4). Default link type is
/// LINKTYPE_RAW (records are bare IPv4 datagrams); pass kLinkTypeEthernet
/// when writing whole frames (see net/ethernet.h).
class PcapWriter {
 public:
  static constexpr std::uint32_t kMagic = 0xa1b2c3d4;
  static constexpr std::uint32_t kLinkTypeEthernet = 1;
  static constexpr std::uint32_t kLinkTypeRaw = 101;
  static constexpr std::uint32_t kSnapLen = 65535;

  explicit PcapWriter(std::ostream& os,
                      std::uint32_t link_type = kLinkTypeRaw);

  /// Appends one packet. Returns false once the stream has failed.
  bool write(double timestamp, std::span<const std::uint8_t> packet);

  [[nodiscard]] std::size_t packets_written() const noexcept {
    return packets_;
  }

 private:
  std::ostream& os_;
  std::size_t packets_ = 0;
};

/// Reads a pcap file produced by this writer or any standard tool.
/// Handles both byte orders (magic 0xa1b2c3d4 / 0xd4c3b2a1) and both
/// microsecond and nanosecond timestamp variants.
class PcapReader {
 public:
  /// Parses the global header. Check ok() before reading records.
  explicit PcapReader(std::istream& is);

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::uint32_t link_type() const noexcept {
    return link_type_;
  }

  /// Reads the next record; nullopt at clean EOF. A truncated record also
  /// returns nullopt but flips ok() to false.
  [[nodiscard]] std::optional<PcapRecord> next();

  /// Drains the stream: every remaining record up to clean EOF or the
  /// first corrupt/truncated record. Check ok() afterwards to distinguish
  /// the two — a truncated tail leaves ok() false with the records read so
  /// far intact, which is what trace importers want (salvage the prefix,
  /// report the damage).
  [[nodiscard]] std::vector<PcapRecord> read_all();

 private:
  [[nodiscard]] std::uint32_t fix32(std::uint32_t v) const noexcept;
  [[nodiscard]] std::uint16_t fix16(std::uint16_t v) const noexcept;

  std::istream& is_;
  bool ok_ = false;
  bool swapped_ = false;
  bool nanosecond_ = false;
  std::uint32_t link_type_ = 0;
};

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_PCAP_H_
