// Chain-balance quality metrics for flow-key hash functions.
//
// Used by the abl_hash_functions bench to compare the [Jai89]-era candidates
// over realistic client populations: the quantity that matters for the
// Sequent algorithm is the *expected chain search cost*, which degrades
// quadratically with imbalance.
#ifndef TCPDEMUX_NET_HASH_QUALITY_H_
#define TCPDEMUX_NET_HASH_QUALITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "net/flow_key.h"
#include "net/hashers.h"

namespace tcpdemux::net {

struct HashQualityReport {
  std::uint32_t chains = 0;
  std::size_t keys = 0;
  std::size_t max_chain = 0;
  std::size_t empty_chains = 0;
  double mean_chain = 0.0;       ///< keys / chains
  double stddev_chain = 0.0;     ///< population std-dev of chain lengths
  double chi_squared = 0.0;      ///< Pearson statistic vs uniform
  /// Expected number of PCBs examined by an (uncached) linear scan of the
  /// chain holding a uniformly random *stored* key:
  /// sum over chains of n_c * (n_c + 1) / 2, divided by total keys.
  double expected_search = 0.0;
  std::vector<std::size_t> histogram;  ///< per-chain occupancy
};

/// Distributes `keys` over `chains` buckets with `kind` and reports balance.
[[nodiscard]] HashQualityReport evaluate_hash_quality(
    HasherKind kind, std::span<const FlowKey> keys, std::uint32_t chains);

/// Degrees of freedom for the chi-squared statistic (chains - 1).
[[nodiscard]] inline double chi_squared_dof(
    const HashQualityReport& r) noexcept {
  return static_cast<double>(r.chains) - 1.0;
}

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_HASH_QUALITY_H_
