#include "net/hashers.h"

#include <array>

#include "net/crc32c.h"

namespace tcpdemux::net {
namespace {

// CRC-32 (IEEE 802.3, reflected) table, built at static-init time.
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[n] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

// Microsoft RSS verification key (40 bytes).
constexpr std::array<std::uint8_t, 40> kRssKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
};

// Per-byte key-schedule table for the Toeplitz hash under the fixed RSS
// key: kToeplitzTable[pos][b] is the 32-bit contribution of input byte
// value b at byte position pos. The Toeplitz hash is linear over GF(2) —
// each set input bit XORs in a 32-bit window of the key — so the eight
// windows of a byte position collapse into one 256-entry table and the
// 96-iteration bit loop becomes twelve table loads XORed together. The
// table is 12 KiB (12 x 256 x 4B), built at compile time, and the generic
// bit-at-a-time toeplitz_hash() stays as the oracle for arbitrary keys.
constexpr std::uint32_t toeplitz_window(std::size_t bit_off) {
  // The 32 consecutive key bits starting at bit offset `bit_off`, MSB
  // first — the window a set input bit at that offset XORs into the hash.
  std::uint32_t window = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    const std::size_t bit = bit_off + i;
    window <<= 1;
    if (bit / 8 < kRssKey.size() &&
        (kRssKey[bit / 8] & (0x80u >> (bit % 8))) != 0) {
      window |= 1;
    }
  }
  return window;
}

constexpr std::array<std::array<std::uint32_t, 256>, 12>
make_toeplitz_table() {
  std::array<std::array<std::uint32_t, 256>, 12> table{};
  for (std::size_t pos = 0; pos < table.size(); ++pos) {
    std::array<std::uint32_t, 8> bit_window{};
    for (std::size_t bit = 0; bit < 8; ++bit) {
      bit_window[bit] = toeplitz_window(pos * 8 + bit);
    }
    for (std::uint32_t value = 0; value < 256; ++value) {
      std::uint32_t h = 0;
      for (std::size_t bit = 0; bit < 8; ++bit) {
        if ((value >> (7 - bit)) & 1) h ^= bit_window[bit];
      }
      table[pos][value] = h;
    }
  }
  return table;
}

constexpr auto kToeplitzTable = make_toeplitz_table();

// Serializes the RSS input for a TCP/IPv4 flow: source address, destination
// address, source port, destination port — from the *packet's* perspective,
// i.e. source = our foreign half, destination = our local half.
std::array<std::uint8_t, 12> rss_input(const FlowKey& key) noexcept {
  std::array<std::uint8_t, 12> in{};
  const std::uint32_t src = key.foreign_addr.value();
  const std::uint32_t dst = key.local_addr.value();
  in[0] = static_cast<std::uint8_t>(src >> 24);
  in[1] = static_cast<std::uint8_t>(src >> 16);
  in[2] = static_cast<std::uint8_t>(src >> 8);
  in[3] = static_cast<std::uint8_t>(src);
  in[4] = static_cast<std::uint8_t>(dst >> 24);
  in[5] = static_cast<std::uint8_t>(dst >> 16);
  in[6] = static_cast<std::uint8_t>(dst >> 8);
  in[7] = static_cast<std::uint8_t>(dst);
  in[8] = static_cast<std::uint8_t>(key.foreign_port >> 8);
  in[9] = static_cast<std::uint8_t>(key.foreign_port);
  in[10] = static_cast<std::uint8_t>(key.local_port >> 8);
  in[11] = static_cast<std::uint8_t>(key.local_port);
  return in;
}

// One's-complement 16-bit additive fold of the six key halfwords [Jai89].
std::uint32_t add_fold(const FlowKey& k) noexcept {
  std::uint32_t sum = (k.local_addr.value() >> 16) +
                      (k.local_addr.value() & 0xffff) +
                      (k.foreign_addr.value() >> 16) +
                      (k.foreign_addr.value() & 0xffff) + k.local_port +
                      k.foreign_port;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return sum;
}

// Bob Jenkins' lookup2 96-bit final mix.
std::uint32_t jenkins_mix(std::uint32_t a, std::uint32_t b,
                          std::uint32_t c) noexcept {
  a -= b; a -= c; a ^= (c >> 13);
  b -= c; b -= a; b ^= (a << 8);
  c -= a; c -= b; c ^= (b >> 13);
  a -= b; a -= c; a ^= (c >> 12);
  b -= c; b -= a; b ^= (a << 16);
  c -= a; c -= b; c ^= (b >> 5);
  a -= b; a -= c; a ^= (c >> 3);
  b -= c; b -= a; b ^= (a << 10);
  c -= a; c -= b; c ^= (b >> 15);
  return c;
}

// splitmix64: expands a small seed into independent 64-bit key words for
// SipHash. Standard constants (Steele et al., "Fast splittable PRNGs").
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct SipKey {
  std::uint64_t k0;
  std::uint64_t k1;
};

// Derives the 128-bit SipHash key from a 32-bit seed. Seed 0 is the default
// (unkeyed-by-convention) key, so hash_flow(kSipHash, key) is still a fixed,
// reproducible function.
SipKey sip_key_from_seed(std::uint32_t seed) noexcept {
  std::uint64_t state = 0x0eb2c0de00000000ULL | seed;
  const std::uint64_t k0 = splitmix64(state);
  const std::uint64_t k1 = splitmix64(state);
  return {k0, k1};
}

constexpr std::uint64_t rotl64(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

std::uint32_t siphash13_flow(const FlowKey& key, std::uint32_t seed) noexcept {
  const auto in = rss_input(key);
  const SipKey k = sip_key_from_seed(seed);
  const std::uint64_t h = siphash(in, k.k0, k.k1, 1, 3);
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace

std::string_view hasher_name(HasherKind kind) noexcept {
  switch (kind) {
    case HasherKind::kBsdModulo: return "bsd_modulo";
    case HasherKind::kXorFold: return "xor_fold";
    case HasherKind::kAddFold: return "add_fold";
    case HasherKind::kMultiplicative: return "multiplicative";
    case HasherKind::kCrc32: return "crc32";
    case HasherKind::kCrc32c: return "crc32c";
    case HasherKind::kJenkins: return "jenkins";
    case HasherKind::kToeplitz: return "toeplitz";
    case HasherKind::kSipHash: return "siphash";
  }
  return "unknown";
}

std::uint32_t crc32_ieee(std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t c = 0xffffffffu;
  for (const std::uint8_t b : bytes) {
    c = kCrcTable[(c ^ b) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::uint32_t toeplitz_hash(std::span<const std::uint8_t> input,
                            std::span<const std::uint8_t> key) noexcept {
  // The key must provide a 32-bit window for every input bit position:
  // key.size() >= input.size() + 4. The RSS key (40 B) covers TCP/IPv6.
  std::uint32_t result = 0;
  // `window` holds 64 consecutive key bits; its top 32 bits are the window
  // aligned with the current input bit.
  std::uint64_t window = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    window = (window << 8) | (i < key.size() ? key[i] : 0);
  }
  std::size_t next_key = 8;
  for (const std::uint8_t byte : input) {
    for (int bit = 7; bit >= 0; --bit) {
      if ((byte >> bit) & 1) {
        result ^= static_cast<std::uint32_t>(window >> 32);
      }
      window <<= 1;
    }
    window |= (next_key < key.size()) ? key[next_key] : 0;
    ++next_key;
  }
  return result;
}

std::span<const std::uint8_t> rss_default_key() noexcept { return kRssKey; }

std::uint64_t siphash(std::span<const std::uint8_t> data, std::uint64_t k0,
                      std::uint64_t k1, int c_rounds, int d_rounds) noexcept {
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const auto sipround = [&] {
    v0 += v1; v1 = rotl64(v1, 13); v1 ^= v0; v0 = rotl64(v0, 32);
    v2 += v3; v3 = rotl64(v3, 16); v3 ^= v2;
    v0 += v3; v3 = rotl64(v3, 21); v3 ^= v0;
    v2 += v1; v1 = rotl64(v1, 17); v1 ^= v2; v2 = rotl64(v2, 32);
  };

  const std::size_t len = data.size();
  const std::size_t full = len - (len % 8);
  for (std::size_t off = 0; off < full; off += 8) {
    std::uint64_t m = 0;
    for (int i = 7; i >= 0; --i) {
      m = (m << 8) | data[off + static_cast<std::size_t>(i)];
    }
    v3 ^= m;
    for (int r = 0; r < c_rounds; ++r) sipround();
    v0 ^= m;
  }

  std::uint64_t b = static_cast<std::uint64_t>(len & 0xff) << 56;
  for (std::size_t i = full; i < len; ++i) {
    b |= static_cast<std::uint64_t>(data[i]) << (8 * (i - full));
  }
  v3 ^= b;
  for (int r = 0; r < c_rounds; ++r) sipround();
  v0 ^= b;

  v2 ^= 0xff;
  for (int r = 0; r < d_rounds; ++r) sipround();
  return v0 ^ v1 ^ v2 ^ v3;
}

std::uint32_t next_seed(std::uint32_t seed) noexcept {
  // One splitmix64 step keyed off the old seed; fold to 32 bits. Skip 0 so
  // a rotated table can never silently drop back to the unkeyed family.
  std::uint64_t state = 0x5eed0000ULL + seed;
  std::uint32_t out = 0;
  do {
    const std::uint64_t z = splitmix64(state);
    out = static_cast<std::uint32_t>(z ^ (z >> 32));
  } while (out == 0 || out == seed);
  return out;
}

std::uint32_t hash_flow(HasherKind kind, const FlowKey& key) noexcept {
  switch (kind) {
    case HasherKind::kBsdModulo:
      // The historical BSD inpcb hash: foreign address + both ports.
      return key.foreign_addr.value() + key.foreign_port + key.local_port;
    case HasherKind::kXorFold:
      return key.local_addr.value() ^ key.foreign_addr.value() ^
             ((static_cast<std::uint32_t>(key.local_port) << 16) |
              key.foreign_port);
    case HasherKind::kAddFold:
      return add_fold(key);
    case HasherKind::kMultiplicative: {
      std::uint64_t folded =
          (static_cast<std::uint64_t>(key.foreign_addr.value()) << 32) |
          key.local_addr.value();
      folded ^= (static_cast<std::uint64_t>(key.foreign_port) << 16) |
                key.local_port;
      return static_cast<std::uint32_t>((folded * 0x9e3779b97f4a7c15ULL) >>
                                        32);
    }
    case HasherKind::kCrc32: {
      const auto in = rss_input(key);
      return crc32_ieee(in);
    }
    case HasherKind::kCrc32c: {
      const auto in = rss_input(key);
      return crc32c(in);
    }
    case HasherKind::kJenkins:
      return jenkins_mix(
          key.local_addr.value(), key.foreign_addr.value(),
          (static_cast<std::uint32_t>(key.local_port) << 16) |
              key.foreign_port);
    case HasherKind::kToeplitz: {
      // Key-schedule table path: twelve loads instead of 96 shift/xor
      // steps. hashers_test pins this against both the bit-at-a-time
      // oracle and the Microsoft RSS verification vectors.
      const auto in = rss_input(key);
      std::uint32_t h = 0;
      for (std::size_t i = 0; i < in.size(); ++i) {
        h ^= kToeplitzTable[i][in[i]];
      }
      return h;
    }
    case HasherKind::kSipHash:
      return siphash13_flow(key, 0);
  }
  return 0;
}

std::array<std::uint8_t, 12> rss_flow_input(const FlowKey& key) noexcept {
  return rss_input(key);
}

std::uint32_t seeded_hash_mix(std::uint32_t hash, std::uint32_t seed) noexcept {
  std::uint64_t state = 0x5eeded00ULL ^ seed;
  const std::uint64_t z = splitmix64(state);
  return mix32_avalanche(hash ^ static_cast<std::uint32_t>(z ^ (z >> 32)));
}

std::uint32_t hash_flow(const HashSpec& spec, const FlowKey& key) noexcept {
  if (spec.seed == 0) {
    return hash_flow(spec.kind, key);  // bit-identical to the unkeyed family
  }
  if (spec.kind == HasherKind::kSipHash) {
    return siphash13_flow(key, spec.seed);
  }
  // Seeded post-mix for the legacy hashers: randomizes chain/slot placement
  // (defeating chain-targeting floods) but NOT full-32-bit-hash collisions —
  // see the header comment for the threat-model boundary.
  return seeded_hash_mix(hash_flow(spec.kind, key), spec.seed);
}

std::string hash_spec_name(const HashSpec& spec) {
  std::string name{hasher_name(spec.kind)};
  if (spec.seed != 0) {
    name += '@';
    constexpr char kHex[] = "0123456789abcdef";
    bool started = false;
    for (int shift = 28; shift >= 0; shift -= 4) {
      const std::uint32_t nibble = (spec.seed >> shift) & 0xf;
      if (nibble != 0) started = true;
      if (started) name += kHex[nibble];
    }
  }
  return name;
}

}  // namespace tcpdemux::net
