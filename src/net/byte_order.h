// Endianness helpers for wire-format (network byte order) serialization.
//
// All multi-byte fields in IPv4 and TCP headers are big-endian on the wire.
// These helpers read/write big-endian integers from/to byte buffers without
// relying on host byte order or unaligned access.
#ifndef TCPDEMUX_NET_BYTE_ORDER_H_
#define TCPDEMUX_NET_BYTE_ORDER_H_

#include <cstdint>
#include <cstddef>
#include <span>

namespace tcpdemux::net {

/// Reads a big-endian 16-bit integer starting at `p[0]`.
[[nodiscard]] constexpr std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(p[0]) << 8) |
                                    static_cast<std::uint16_t>(p[1]));
}

/// Reads a big-endian 32-bit integer starting at `p[0]`.
[[nodiscard]] constexpr std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

/// Writes `v` as a big-endian 16-bit integer starting at `p[0]`.
constexpr void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
}

/// Writes `v` as a big-endian 32-bit integer starting at `p[0]`.
constexpr void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[3] = static_cast<std::uint8_t>(v & 0xff);
}

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_BYTE_ORDER_H_
