// RFC 1071 Internet checksum, used by both the IPv4 header checksum and the
// TCP checksum (over pseudo-header + segment).
#ifndef TCPDEMUX_NET_CHECKSUM_H_
#define TCPDEMUX_NET_CHECKSUM_H_

#include <cstdint>
#include <span>

#include "net/ip_addr.h"

namespace tcpdemux::net {

/// Accumulates 16-bit one's-complement sums over arbitrary byte ranges.
///
/// The accumulator is fold-free until finish(), so data may be fed in any
/// number of chunks; an odd-length chunk may only be the final one (its last
/// byte is padded with zero per RFC 1071).
class ChecksumAccumulator {
 public:
  /// Adds a byte range to the running sum. If `bytes.size()` is odd the last
  /// byte is treated as the high octet of a zero-padded 16-bit word, so only
  /// the final chunk may legitimately have odd length.
  void add(std::span<const std::uint8_t> bytes) noexcept;

  /// Adds a single 16-bit word (host order value treated as one wire word).
  void add_word(std::uint16_t word) noexcept { sum_ += word; }

  /// Folds carries and returns the one's-complement checksum.
  [[nodiscard]] std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
};

/// One-shot checksum of a byte range.
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::uint8_t> bytes) noexcept;

/// TCP checksum: pseudo-header (src, dst, protocol 6, tcp_length) followed by
/// the TCP header + payload bytes in `segment`.
[[nodiscard]] std::uint16_t tcp_checksum(
    Ipv4Addr src, Ipv4Addr dst,
    std::span<const std::uint8_t> segment) noexcept;

/// True if `bytes` (which must embed its own checksum field) sums to the
/// all-ones pattern, i.e. verifies correctly.
[[nodiscard]] bool verify_checksum(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_CHECKSUM_H_
