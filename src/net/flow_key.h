// FlowKey: the 96-bit connection identity a TCP demultiplexer searches on.
//
// The paper (§1): "The algorithm does this by mapping the packet's source
// and destination Internet Protocol (IP) addresses and TCP ports to the
// proper PCB. Since the addresses and ports total 96 bits, simple indexing
// schemes are not feasible."
//
// Keys are expressed from the receiving host's point of view:
// (local addr, local port, foreign addr, foreign port). In the classic BSD
// PCB these are (inp_laddr, inp_lport, inp_faddr, inp_fport). A listening
// socket stores wildcards (0.0.0.0 / port 0) in the foreign half and
// possibly a wildcard local address; `match()` implements BSD
// in_pcblookup()'s best-match semantics.
#ifndef TCPDEMUX_NET_FLOW_KEY_H_
#define TCPDEMUX_NET_FLOW_KEY_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/ip_addr.h"

namespace tcpdemux::net {

struct FlowKey {
  Ipv4Addr local_addr;
  std::uint16_t local_port = 0;
  Ipv4Addr foreign_addr;
  std::uint16_t foreign_port = 0;

  friend constexpr auto operator<=>(const FlowKey&,
                                    const FlowKey&) noexcept = default;

  /// True if every field is concrete (no wildcard address or port).
  [[nodiscard]] constexpr bool fully_specified() const noexcept {
    return !local_addr.is_any() && local_port != 0 &&
           !foreign_addr.is_any() && foreign_port != 0;
  }

  /// Number of wildcard fields that `packet_key` would have to tolerate to
  /// match this (stored) key, or -1 if no match at all. 0 means exact match.
  ///
  /// `packet_key` must be fully specified (it comes from a real packet);
  /// `this` is a stored PCB key which may contain wildcards. Lower scores
  /// are better matches — BSD keeps searching for a lower-wildcard match
  /// after finding a wildcard one.
  [[nodiscard]] constexpr int match_score(
      const FlowKey& packet_key) const noexcept {
    if (local_port != packet_key.local_port) return -1;
    int wildcards = 0;
    if (local_addr.is_any()) {
      ++wildcards;
    } else if (local_addr != packet_key.local_addr) {
      return -1;
    }
    if (foreign_addr.is_any() && foreign_port == 0) {
      ++wildcards;
    } else if (foreign_addr != packet_key.foreign_addr ||
               foreign_port != packet_key.foreign_port) {
      return -1;
    }
    return wildcards;
  }

  /// Exact (non-wildcard) equality with a packet's key.
  [[nodiscard]] constexpr bool exact_match(
      const FlowKey& packet_key) const noexcept {
    return *this == packet_key;
  }

  /// The same flow seen from the peer: local and foreign halves swapped.
  [[nodiscard]] constexpr FlowKey reversed() const noexcept {
    return FlowKey{foreign_addr, foreign_port, local_addr, local_port};
  }

  /// "10.0.0.1:5001 <- 10.9.8.7:40001"
  [[nodiscard]] std::string to_string() const;
};

}  // namespace tcpdemux::net

template <>
struct std::hash<tcpdemux::net::FlowKey> {
  std::size_t operator()(const tcpdemux::net::FlowKey& k) const noexcept {
    // 64-bit mix of all 96 key bits (splitmix64 finalizer).
    std::uint64_t x =
        (static_cast<std::uint64_t>(k.local_addr.value()) << 32) |
        k.foreign_addr.value();
    x ^= (static_cast<std::uint64_t>(k.local_port) << 16) | k.foreign_port;
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

#endif  // TCPDEMUX_NET_FLOW_KEY_H_
