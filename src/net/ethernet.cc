#include "net/ethernet.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "net/byte_order.h"

namespace tcpdemux::net {

std::optional<MacAddr> MacAddr::parse(std::string_view text) {
  std::array<std::uint8_t, 6> octets{};
  std::size_t pos = 0;
  for (int i = 0; i < 6; ++i) {
    if (pos + 2 > text.size()) return std::nullopt;
    std::uint32_t value = 0;
    const char* begin = text.data() + pos;
    const auto [ptr, ec] = std::from_chars(begin, begin + 2, value, 16);
    if (ec != std::errc{} || ptr != begin + 2) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value);
    pos += 2;
    if (i < 5) {
      if (pos >= text.size() || text[pos] != ':') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return MacAddr(octets);
}

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

std::size_t EthernetHeader::serialize(std::span<std::uint8_t> out) const {
  for (std::size_t i = 0; i < 6; ++i) out[i] = dst.octets()[i];
  for (std::size_t i = 0; i < 6; ++i) out[6 + i] = src.octets()[i];
  store_be16(out.data() + 12, ether_type);
  return kSize;
}

std::optional<EthernetHeader> EthernetHeader::parse(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSize) return std::nullopt;
  EthernetHeader h;
  std::array<std::uint8_t, 6> dst{};
  std::array<std::uint8_t, 6> src{};
  for (std::size_t i = 0; i < 6; ++i) {
    dst[i] = bytes[i];
    src[i] = bytes[6 + i];
  }
  h.dst = MacAddr(dst);
  h.src = MacAddr(src);
  h.ether_type = load_be16(bytes.data() + 12);
  return h;
}

std::vector<std::uint8_t> ethernet_encapsulate(
    const MacAddr& dst, const MacAddr& src,
    std::span<const std::uint8_t> ipv4_datagram) {
  std::vector<std::uint8_t> frame(EthernetHeader::kSize +
                                  ipv4_datagram.size());
  EthernetHeader header;
  header.dst = dst;
  header.src = src;
  header.serialize(frame);
  std::copy(ipv4_datagram.begin(), ipv4_datagram.end(),
            frame.begin() + EthernetHeader::kSize);
  return frame;
}

std::vector<std::uint8_t> ethernet_encapsulate_vlan(
    const MacAddr& dst, const MacAddr& src, std::uint16_t vid,
    std::uint8_t pcp, std::span<const std::uint8_t> ipv4_datagram) {
  std::vector<std::uint8_t> frame(EthernetHeader::kSize + 4 +
                                  ipv4_datagram.size());
  EthernetHeader header;
  header.dst = dst;
  header.src = src;
  header.ether_type = static_cast<std::uint16_t>(EtherType::kVlan);
  header.serialize(frame);
  const std::uint16_t tci = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(pcp & 0x7) << 13) | (vid & 0x0fff));
  store_be16(frame.data() + EthernetHeader::kSize, tci);
  store_be16(frame.data() + EthernetHeader::kSize + 2,
             static_cast<std::uint16_t>(EtherType::kIpv4));
  std::copy(ipv4_datagram.begin(), ipv4_datagram.end(),
            frame.begin() + EthernetHeader::kSize + 4);
  return frame;
}

std::optional<std::span<const std::uint8_t>> ethernet_decapsulate_ipv4(
    std::span<const std::uint8_t> frame) {
  const auto header = EthernetHeader::parse(frame);
  if (!header) return std::nullopt;
  std::size_t offset = EthernetHeader::kSize;
  std::uint16_t ether_type = header->ether_type;
  if (ether_type == static_cast<std::uint16_t>(EtherType::kVlan)) {
    if (frame.size() < offset + 4) return std::nullopt;
    ether_type = load_be16(frame.data() + offset + 2);
    offset += 4;
  }
  if (ether_type != static_cast<std::uint16_t>(EtherType::kIpv4)) {
    return std::nullopt;
  }
  return frame.subspan(offset);
}

std::optional<std::uint16_t> ethernet_vlan_id(
    std::span<const std::uint8_t> frame) {
  const auto header = EthernetHeader::parse(frame);
  if (!header ||
      header->ether_type != static_cast<std::uint16_t>(EtherType::kVlan)) {
    return std::nullopt;
  }
  if (frame.size() < EthernetHeader::kSize + 4) return std::nullopt;
  return load_be16(frame.data() + EthernetHeader::kSize) & 0x0fff;
}

}  // namespace tcpdemux::net
