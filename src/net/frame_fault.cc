#include "net/frame_fault.h"

#include <random>

namespace tcpdemux::net {

std::vector<std::uint8_t> truncated(std::span<const std::uint8_t> frame,
                                    std::size_t len) {
  if (len > frame.size()) len = frame.size();
  return {frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(len)};
}

std::vector<std::vector<std::uint8_t>> all_prefixes(
    std::span<const std::uint8_t> frame) {
  std::vector<std::vector<std::uint8_t>> prefixes;
  prefixes.reserve(frame.size() + 1);
  for (std::size_t len = 0; len <= frame.size(); ++len) {
    prefixes.push_back(truncated(frame, len));
  }
  return prefixes;
}

std::vector<std::uint8_t> garble_bytes(std::span<const std::uint8_t> frame,
                                       std::uint64_t seed,
                                       std::size_t flips) {
  std::vector<std::uint8_t> out{frame.begin(), frame.end()};
  if (out.empty()) return out;
  // rng-discipline exemption: net sits below sim in the layering DAG
  // (include-layering pass), so this file cannot reach sim::Rng without
  // inverting a layer. The engine is still fully deterministic — seeded
  // by the caller per call, no hidden state — which is the property the
  // rule exists to protect.
  std::mt19937_64 rng(seed);  // NOLINT(rng-discipline)
  for (std::size_t i = 0; i < flips; ++i) {
    out[rng() % out.size()] = static_cast<std::uint8_t>(rng());
  }
  return out;
}

}  // namespace tcpdemux::net
