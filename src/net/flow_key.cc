#include "net/flow_key.h"

namespace tcpdemux::net {

std::string FlowKey::to_string() const {
  std::string out = local_addr.to_string();
  out += ':';
  out += std::to_string(local_port);
  out += " <- ";
  out += foreign_addr.to_string();
  out += ':';
  out += std::to_string(foreign_port);
  return out;
}

}  // namespace tcpdemux::net
