#include "net/hash_quality.h"

#include <cmath>

namespace tcpdemux::net {

HashQualityReport evaluate_hash_quality(HasherKind kind,
                                        std::span<const FlowKey> keys,
                                        std::uint32_t chains) {
  HashQualityReport r;
  r.chains = chains;
  r.keys = keys.size();
  r.histogram.assign(chains, 0);
  for (const FlowKey& key : keys) {
    ++r.histogram[hash_chain(kind, key, chains)];
  }

  const double expected = static_cast<double>(keys.size()) / chains;
  r.mean_chain = expected;
  double var = 0.0;
  double search_sum = 0.0;
  for (const std::size_t n : r.histogram) {
    if (n == 0) ++r.empty_chains;
    if (n > r.max_chain) r.max_chain = n;
    const double d = static_cast<double>(n) - expected;
    var += d * d;
    if (expected > 0.0) r.chi_squared += d * d / expected;
    search_sum += static_cast<double>(n) * (static_cast<double>(n) + 1.0) / 2.0;
  }
  r.stddev_chain = std::sqrt(var / chains);
  r.expected_search = keys.empty() ? 0.0 : search_sum / static_cast<double>(keys.size());
  return r;
}

}  // namespace tcpdemux::net
