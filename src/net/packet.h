// A parsed TCP/IPv4 packet plus a builder for constructing valid wire bytes.
#ifndef TCPDEMUX_NET_PACKET_H_
#define TCPDEMUX_NET_PACKET_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/flow_key.h"
#include "net/headers.h"
#include "net/ip_addr.h"

namespace tcpdemux::net {

/// A fully parsed and checksum-verified TCP/IPv4 packet.
struct Packet {
  Ipv4Header ip;
  TcpHeader tcp;
  std::vector<std::uint8_t> payload;

  /// The demultiplexing key as seen by the packet's *receiver*: the
  /// packet's destination is the local half, its source the foreign half.
  [[nodiscard]] FlowKey receiver_flow_key() const noexcept {
    return FlowKey{ip.dst, tcp.dst_port, ip.src, tcp.src_port};
  }

  /// Parses and verifies a wire-format TCP/IPv4 packet. Fails on any IPv4
  /// parse failure, non-TCP protocol, fragmentation, TCP parse failure, or
  /// bad TCP checksum.
  [[nodiscard]] static std::optional<Packet> parse(
      std::span<const std::uint8_t> wire);
};

/// Builds wire-format TCP/IPv4 packets with correct lengths and checksums.
///
///   auto wire = PacketBuilder()
///                   .from({Ipv4Addr(10,0,0,2), 40001})
///                   .to({Ipv4Addr(10,0,0,1), 5001})
///                   .seq(1000).ack_seq(2000)
///                   .flags(TcpFlag::kAck | TcpFlag::kPsh)
///                   .payload(query_bytes)
///                   .build();
class PacketBuilder {
 public:
  struct Endpoint {
    Ipv4Addr addr;
    std::uint16_t port = 0;
  };

  PacketBuilder& from(Endpoint src) noexcept {
    src_ = src;
    return *this;
  }
  PacketBuilder& to(Endpoint dst) noexcept {
    dst_ = dst;
    return *this;
  }
  PacketBuilder& seq(std::uint32_t s) noexcept {
    tcp_.seq = s;
    return *this;
  }
  PacketBuilder& ack_seq(std::uint32_t a) noexcept {
    tcp_.ack = a;
    tcp_.set(TcpFlag::kAck);
    return *this;
  }
  PacketBuilder& flags(std::uint8_t f) noexcept {
    tcp_.flags |= f;
    return *this;
  }
  PacketBuilder& flags(TcpFlag f) noexcept {
    tcp_.set(f);
    return *this;
  }
  PacketBuilder& window(std::uint16_t w) noexcept {
    tcp_.window = w;
    return *this;
  }
  PacketBuilder& ttl(std::uint8_t t) noexcept {
    ttl_ = t;
    return *this;
  }
  PacketBuilder& ip_id(std::uint16_t id) noexcept {
    ip_id_ = id;
    return *this;
  }
  PacketBuilder& payload(std::span<const std::uint8_t> bytes) {
    payload_.assign(bytes.begin(), bytes.end());
    return *this;
  }
  PacketBuilder& payload_size(std::size_t n) {
    payload_.assign(n, 0xab);
    return *this;
  }

  /// Serializes to wire bytes (IPv4 header, TCP header, payload) with both
  /// checksums computed.
  [[nodiscard]] std::vector<std::uint8_t> build() const;

 private:
  Endpoint src_;
  Endpoint dst_;
  TcpHeader tcp_;
  std::uint8_t ttl_ = 64;
  std::uint16_t ip_id_ = 0;
  std::vector<std::uint8_t> payload_;
};

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_PACKET_H_
