// IPv4 address value type.
#ifndef TCPDEMUX_NET_IP_ADDR_H_
#define TCPDEMUX_NET_IP_ADDR_H_

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tcpdemux::net {

/// An IPv4 address held in host byte order.
///
/// A default-constructed address is 0.0.0.0, which this library treats as
/// the wildcard address (INADDR_ANY) in listen-socket flow keys.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() noexcept = default;

  /// Constructs from a host-byte-order 32-bit value.
  constexpr explicit Ipv4Addr(std::uint32_t host_order) noexcept
      : addr_(host_order) {}

  /// Constructs from four dotted-quad octets: Ipv4Addr(10, 0, 0, 1).
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : addr_((static_cast<std::uint32_t>(a) << 24) |
              (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) |
              static_cast<std::uint32_t>(d)) {}

  /// Parses dotted-quad notation ("10.1.2.3"). Returns nullopt on any
  /// malformed input (wrong octet count, octet > 255, empty components,
  /// non-digit characters, leading-plus/minus signs).
  [[nodiscard]] static std::optional<Ipv4Addr> parse(std::string_view text);

  /// Host-byte-order value.
  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return addr_; }

  /// True for 0.0.0.0 (the wildcard / INADDR_ANY).
  [[nodiscard]] constexpr bool is_any() const noexcept { return addr_ == 0; }

  /// True for 127.0.0.0/8.
  [[nodiscard]] constexpr bool is_loopback() const noexcept {
    return (addr_ >> 24) == 127;
  }

  /// True for 224.0.0.0/4.
  [[nodiscard]] constexpr bool is_multicast() const noexcept {
    return (addr_ >> 28) == 0xe;
  }

  /// Dotted-quad string ("10.1.2.3").
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) noexcept = default;

  /// The wildcard address 0.0.0.0.
  static constexpr Ipv4Addr any() noexcept { return Ipv4Addr{}; }

 private:
  std::uint32_t addr_ = 0;
};

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_IP_ADDR_H_
