#include "net/pcap.h"

#include <array>
#include <bit>
#include <cmath>
#include <cstring>

namespace tcpdemux::net {
namespace {

constexpr std::uint32_t kMagicSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNano = 0xa1b23c4d;
constexpr std::uint32_t kMagicNanoSwapped = 0x4d3cb2a1;

constexpr std::uint32_t bswap32(std::uint32_t v) noexcept {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

constexpr std::uint16_t bswap16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

void put32(std::ostream& os, std::uint32_t v) {
  // Host byte order, as the format prescribes for the writing machine.
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void put16(std::ostream& os, std::uint16_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

bool get32(std::istream& is, std::uint32_t& v) {
  return static_cast<bool>(
      is.read(reinterpret_cast<char*>(&v), sizeof v));
}

bool get16(std::istream& is, std::uint16_t& v) {
  return static_cast<bool>(
      is.read(reinterpret_cast<char*>(&v), sizeof v));
}

}  // namespace

PcapWriter::PcapWriter(std::ostream& os, std::uint32_t link_type)
    : os_(os) {
  put32(os_, kMagic);
  put16(os_, 2);  // version major
  put16(os_, 4);  // version minor
  put32(os_, 0);  // thiszone
  put32(os_, 0);  // sigfigs
  put32(os_, kSnapLen);
  put32(os_, link_type);
}

bool PcapWriter::write(double timestamp,
                       std::span<const std::uint8_t> packet) {
  const auto secs = static_cast<std::uint32_t>(timestamp);
  const auto usecs = static_cast<std::uint32_t>(
      std::lround((timestamp - secs) * 1e6) % 1000000);
  put32(os_, secs);
  put32(os_, usecs);
  put32(os_, static_cast<std::uint32_t>(packet.size()));
  put32(os_, static_cast<std::uint32_t>(packet.size()));
  os_.write(reinterpret_cast<const char*>(packet.data()),
            static_cast<std::streamsize>(packet.size()));
  ++packets_;
  return static_cast<bool>(os_);
}

PcapReader::PcapReader(std::istream& is) : is_(is) {
  std::uint32_t magic = 0;
  if (!get32(is_, magic)) return;
  switch (magic) {
    case PcapWriter::kMagic: break;
    case kMagicSwapped: swapped_ = true; break;
    case kMagicNano: nanosecond_ = true; break;
    case kMagicNanoSwapped:
      swapped_ = true;
      nanosecond_ = true;
      break;
    default: return;  // not a pcap file
  }
  std::uint16_t major = 0;
  std::uint16_t minor = 0;
  std::uint32_t skip = 0;
  std::uint32_t snaplen = 0;
  std::uint32_t network = 0;
  if (!get16(is_, major) || !get16(is_, minor) || !get32(is_, skip) ||
      !get32(is_, skip) || !get32(is_, snaplen) || !get32(is_, network)) {
    return;
  }
  if (fix16(major) != 2) return;
  link_type_ = fix32(network);
  ok_ = true;
}

std::uint32_t PcapReader::fix32(std::uint32_t v) const noexcept {
  return swapped_ ? bswap32(v) : v;
}

std::uint16_t PcapReader::fix16(std::uint16_t v) const noexcept {
  return swapped_ ? bswap16(v) : v;
}

std::optional<PcapRecord> PcapReader::next() {
  if (!ok_) return std::nullopt;
  std::uint32_t secs = 0;
  if (!get32(is_, secs)) return std::nullopt;  // clean EOF
  std::uint32_t frac = 0;
  std::uint32_t incl = 0;
  std::uint32_t orig = 0;
  if (!get32(is_, frac) || !get32(is_, incl) || !get32(is_, orig)) {
    ok_ = false;  // truncated record header
    return std::nullopt;
  }
  PcapRecord record;
  const double divisor = nanosecond_ ? 1e9 : 1e6;
  record.timestamp =
      static_cast<double>(fix32(secs)) + fix32(frac) / divisor;
  const std::uint32_t length = fix32(incl);
  if (length > PcapWriter::kSnapLen) {
    ok_ = false;  // implausible length: corrupt file
    return std::nullopt;
  }
  record.bytes.resize(length);
  if (!is_.read(reinterpret_cast<char*>(record.bytes.data()), length)) {
    ok_ = false;  // truncated payload
    return std::nullopt;
  }
  return record;
}

std::vector<PcapRecord> PcapReader::read_all() {
  std::vector<PcapRecord> records;
  while (auto record = next()) {
    records.push_back(std::move(*record));
  }
  return records;
}

}  // namespace tcpdemux::net
