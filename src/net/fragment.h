// IPv4 fragmentation and reassembly (RFC 791 §3.2).
//
// The demultiplexing fast path (Packet::parse) deliberately rejects
// fragments — a real receive path reassembles them first. This module
// provides both directions: splitting an IPv4 datagram into valid
// fragments for a given MTU, and a Reassembler that accepts fragments in
// any order, tolerates duplicates and overlaps (last writer wins), times
// out stale datagrams, and bounds its memory.
#ifndef TCPDEMUX_NET_FRAGMENT_H_
#define TCPDEMUX_NET_FRAGMENT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "net/headers.h"

namespace tcpdemux::net {

/// Splits a wire-format IPv4 datagram into fragments whose total length
/// does not exceed `mtu`. Returns the datagram unchanged (one element) if
/// it already fits. Returns empty on: unparseable input, an MTU too small
/// to carry any payload (< header + 8), or a don't-fragment datagram that
/// does not fit.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> fragment_packet(
    std::span<const std::uint8_t> wire, std::size_t mtu);

/// Reassembles IPv4 fragments into complete datagrams.
class Reassembler {
 public:
  struct Options {
    double timeout = 30.0;            ///< seconds a partial datagram lives
    std::size_t max_datagrams = 256;  ///< concurrent partial datagrams
    std::size_t max_bytes = 65535;    ///< per-datagram reassembly buffer
  };

  Reassembler() : Reassembler(Options()) {}
  explicit Reassembler(Options options) : options_(options) {}

  /// Offers one wire-format IPv4 packet at time `now`. Non-fragments are
  /// returned immediately. A fragment that completes its datagram returns
  /// the reassembled wire bytes (header from the first fragment, offset 0,
  /// MF clear, checksum recomputed). Otherwise nullopt.
  std::optional<std::vector<std::uint8_t>> offer(
      std::span<const std::uint8_t> wire, double now);

  /// Discards partial datagrams older than the timeout. Returns how many
  /// were dropped.
  std::size_t expire(double now);

  [[nodiscard]] std::size_t pending_datagrams() const noexcept {
    return pending_.size();
  }

  /// Fragments rejected for any reason (parse failure, overflow, over
  /// capacity) — a real stack would bump a MIB counter.
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  struct DatagramKey {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint16_t id = 0;
    std::uint8_t protocol = 0;
    friend auto operator<=>(const DatagramKey&,
                            const DatagramKey&) = default;
  };
  struct Partial {
    double first_seen = 0.0;
    std::vector<std::uint8_t> data;   ///< payload bytes by offset
    std::vector<bool> present;        ///< per-byte fill map
    std::size_t total_length = 0;     ///< payload length; 0 until MF=0 seen
    std::optional<Ipv4Header> header; ///< from the offset-0 fragment
  };

  std::optional<std::vector<std::uint8_t>> try_complete(
      const DatagramKey& key, Partial& partial);

  Options options_;
  std::map<DatagramKey, Partial> pending_;
  std::uint64_t rejected_ = 0;
};

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_FRAGMENT_H_
