// Wire-format IPv4 and TCP headers: typed representations plus
// parse/serialize to network byte order.
//
// Only the fields a demultiplexer and a minimal TCP machine need are modeled
// as first-class members; IPv4 options are rejected on parse (the simulated
// stack never emits them) and TCP options are carried as an opaque blob so
// data offset round-trips exactly.
#ifndef TCPDEMUX_NET_HEADERS_H_
#define TCPDEMUX_NET_HEADERS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ip_addr.h"

namespace tcpdemux::net {

/// TCP flag bits, matching their wire positions in the flags octet.
enum class TcpFlag : std::uint8_t {
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
  kUrg = 0x20,
};

[[nodiscard]] constexpr std::uint8_t operator|(TcpFlag a, TcpFlag b) noexcept {
  return static_cast<std::uint8_t>(static_cast<std::uint8_t>(a) |
                                   static_cast<std::uint8_t>(b));
}
[[nodiscard]] constexpr std::uint8_t operator|(std::uint8_t a,
                                               TcpFlag b) noexcept {
  return static_cast<std::uint8_t>(a | static_cast<std::uint8_t>(b));
}

/// IPv4 header (20-byte, option-free form).
struct Ipv4Header {
  static constexpr std::size_t kSize = 20;

  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = kSize;  ///< header + payload, bytes
  std::uint16_t identification = 0;
  bool dont_fragment = true;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  ///< in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 6;  ///< 6 = TCP
  Ipv4Addr src;
  Ipv4Addr dst;

  /// Serializes into `out` (must be >= kSize bytes) with a freshly computed
  /// header checksum. Returns bytes written.
  std::size_t serialize(std::span<std::uint8_t> out) const;

  /// Parses a header. Fails (nullopt) on: short buffer, version != 4,
  /// IHL != 5 (options unsupported), bad header checksum, or total_length
  /// smaller than the header or larger than the buffer.
  [[nodiscard]] static std::optional<Ipv4Header> parse(
      std::span<const std::uint8_t> bytes);
};

/// TCP header. `options` must be a multiple of 4 bytes (pre-padded).
struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;
  static constexpr std::size_t kMaxSize = 60;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t urgent_pointer = 0;
  std::vector<std::uint8_t> options;  ///< padded to 4-byte multiple

  [[nodiscard]] bool has(TcpFlag f) const noexcept {
    return (flags & static_cast<std::uint8_t>(f)) != 0;
  }
  void set(TcpFlag f) noexcept { flags |= static_cast<std::uint8_t>(f); }

  /// Header length in bytes (20 + options).
  [[nodiscard]] std::size_t size() const noexcept {
    return kMinSize + options.size();
  }

  /// Serializes the header into `out` (must be >= size() bytes) with the
  /// checksum field zeroed; the caller computes the TCP checksum over
  /// pseudo-header + header + payload and patches bytes 16..17.
  /// Returns bytes written.
  std::size_t serialize(std::span<std::uint8_t> out) const;

  /// Parses a header. Fails on: short buffer, data offset < 5 or beyond the
  /// buffer. Does not verify the checksum (that needs the pseudo-header;
  /// see Packet::parse).
  [[nodiscard]] static std::optional<TcpHeader> parse(
      std::span<const std::uint8_t> bytes);

  /// Human-readable flag string, e.g. "SYN|ACK".
  [[nodiscard]] std::string flags_to_string() const;
};

}  // namespace tcpdemux::net

#endif  // TCPDEMUX_NET_HEADERS_H_
