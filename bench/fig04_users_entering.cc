// Figure 4: N(T) — the expected number of the other 1,999 users entering at
// least one transaction during an interval of length T, for 2,000 TPC/A
// users at a = 0.1 txn/s.
//
// Three evaluations of the same quantity:
//   closed    (N-1)(1 - e^{-aT})           — Equation 3's binomial mean
//   exact-sum the literal Equation 3 sum   — log-space binomial weights
//   simulated windows of length T sampled from a generated TPC/A trace
#include <algorithm>
#include <iostream>
#include <vector>

#include "analytic/binomial.h"
#include "analytic/exp_math.h"
#include "analytic/model.h"
#include "report/ascii_plot.h"
#include "report/table.h"
#include "sim/tpca_workload.h"

namespace {

using namespace tcpdemux;

constexpr std::uint32_t kUsers = 2000;
constexpr double kRate = 0.1;

/// Counts, averaged over sampled window starts, how many *other* users had
/// at least one transaction-entry arrival in a window of length T.
double simulate_entering(const sim::Trace& trace, double window,
                         double horizon) {
  // Collect per-connection sorted arrival times (queries only).
  std::vector<std::vector<double>> arrivals(trace.connections);
  for (const sim::TraceEvent& e : trace.events) {
    if (e.kind == sim::TraceEventKind::kArrivalData) {
      arrivals[e.conn].push_back(e.time);
    }
  }
  double total = 0.0;
  int samples = 0;
  for (double start = 0.0; start + window < horizon; start += 7.61) {
    std::size_t entering = 0;
    for (const auto& conn : arrivals) {
      const auto it =
          std::lower_bound(conn.begin(), conn.end(), start);
      if (it != conn.end() && *it < start + window) ++entering;
    }
    total += static_cast<double>(entering);
    ++samples;
  }
  // "Other users": the window-owner himself is one of the 2,000; the
  // analytic N(T) counts the N-1 others, so scale accordingly.
  return samples == 0 ? 0.0
                      : (total / samples) * (kUsers - 1.0) / kUsers;
}

}  // namespace

int main() {
  std::cout << "=== Figure 4: N(T) for 2,000 TPC/A users (a = 0.1/s) ===\n\n";

  sim::TpcaWorkloadParams p;
  p.users = kUsers;
  p.duration = 300.0;
  p.warmup = 30.0;
  p.open_loop = true;
  p.truncate_think = false;  // the analysis models the pure exponential
  const sim::Trace trace = sim::generate_tpca_trace(p);

  report::Table table({"T (s)", "closed form", "exact sum (Eq 3)",
                       "simulated"});
  report::Series closed{"closed form", '*', {}, {}};
  report::Series simulated{"simulated", 'o', {}, {}};

  for (double t = 0.0; t <= 50.0; t += 2.5) {
    const double cf = analytic::expected_users_entering(kUsers, kRate, t);
    const double es = analytic::binomial_mean_by_sum(
        kUsers - 1, analytic::exp_cdf(kRate, t));
    const double sm = simulate_entering(trace, t, p.duration);
    table.add_row({report::fmt(t, 1), report::fmt(cf, 1), report::fmt(es, 1),
                   report::fmt(sm, 1)});
    closed.x.push_back(t);
    closed.y.push_back(cf);
    simulated.x.push_back(t);
    simulated.y.push_back(sm);
  }
  table.print(std::cout);

  std::cout << '\n';
  report::PlotOptions opts;
  opts.title = "Figure 4: expected # other users entering transactions";
  opts.x_label = "time between transactions for given user (seconds)";
  plot(std::cout, {closed, simulated}, opts);

  std::cout << "\npaper reference: the curve rises from 0 toward 2,000, "
               "reaching ~1264 at T=10 s\n";
  return 0;
}
