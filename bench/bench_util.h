// Shared helpers for the table/figure benches: standard TPC/A runs,
// paper-vs-model-vs-simulation formatting, and — for the wallclock_*
// binaries — the one calibrated timing loop they all use plus --json /
// --smoke command-line handling.
#ifndef TCPDEMUX_BENCH_BENCH_UTIL_H_
#define TCPDEMUX_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/demux_registry.h"
#include "net/flow_key.h"
#include "report/bench_json.h"
#include "report/telemetry_json.h"
#include "sim/replay.h"
#include "sim/rng.h"
#include "sim/tpca_workload.h"

namespace tcpdemux::bench {

struct TpcaRun {
  std::uint32_t users = 2000;
  double response_time = 0.2;
  double rtt = 0.001;
  double duration = 200.0;
  double warmup = 20.0;
  bool open_loop = true;      // match the paper's analysis assumptions
  bool truncate_think = false;
  std::uint64_t seed = 42;
};

/// Generates the TPC/A trace for `run` and replays it through a freshly
/// constructed demuxer described by `config`.
inline sim::ReplayResult run_tpca(const TpcaRun& run,
                                  const core::DemuxConfig& config) {
  sim::TpcaWorkloadParams p;
  p.users = run.users;
  p.response_time = run.response_time;
  p.rtt = run.rtt;
  p.duration = run.duration;
  p.warmup = run.warmup;
  p.open_loop = run.open_loop;
  p.truncate_think = run.truncate_think;
  p.seed = run.seed;
  const sim::Trace trace = sim::generate_tpca_trace(p);
  const auto demuxer = core::make_demuxer(config);
  return sim::replay_trace(trace, *demuxer);
}

/// Replays one pre-generated trace through a fresh demuxer (use when
/// several algorithms must see the identical arrival stream).
inline sim::ReplayResult replay(const sim::Trace& trace,
                                const core::DemuxConfig& config) {
  const auto demuxer = core::make_demuxer(config);
  return sim::replay_trace(trace, *demuxer);
}

inline core::DemuxConfig config_of(std::string_view spec) {
  const auto config = core::parse_demux_spec(spec);
  if (!config) throw std::invalid_argument("bad demux spec");
  return *config;
}

// ---------------------------------------------------------------------------
// Wall-clock timing. One calibrated loop shared by every wallclock_* bench
// so they cannot drift apart in methodology: calibrate the per-rep call
// count to a minimum wall time, run R timed reps, report the median.
// ---------------------------------------------------------------------------

/// Keeps `value` observable so the optimizer cannot delete the computation
/// that produced it.
template <typename T>
inline void do_not_optimize(T const& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  static volatile T sink;
  sink = value;
#endif
}

/// Full compiler barrier: forces pending writes to be considered visible,
/// so stores into bench-owned buffers cannot be sunk out of the timed
/// region.
inline void clobber_memory() {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" ::: "memory");
#endif
}

struct TimeLoopOptions {
  int reps = 5;                   ///< timed repetitions; the median wins
  double min_rep_seconds = 0.05;  ///< calibration target per rep
};

struct Timing {
  double ns_per_op = 0.0;         ///< median over reps
  std::uint64_t calls_per_rep = 0;
  int reps = 0;
};

/// Times `body` (which performs `ops_per_call` operations per invocation).
/// Calibrates the number of calls per rep so each rep runs at least
/// `min_rep_seconds`, then takes the median ns/op over `reps` reps —
/// robust against a stray scheduler preemption in any single rep.
template <typename F>
Timing time_loop(std::uint64_t ops_per_call, F&& body,
                 TimeLoopOptions opt = {}) {
  using clock = std::chrono::steady_clock;
  const auto run = [&](std::uint64_t calls) {
    const auto t0 = clock::now();
    for (std::uint64_t c = 0; c < calls; ++c) {
      body();
      clobber_memory();
    }
    return std::chrono::duration<double>(clock::now() - t0).count();
  };

  std::uint64_t calls = 1;
  double seconds = run(calls);
  while (seconds < opt.min_rep_seconds && calls < (1ULL << 40)) {
    // Scale toward the target in one or two steps instead of doubling
    // forever; the 1.4 headroom compensates for sub-linear re-runs.
    const double scale =
        std::max(2.0, 1.4 * opt.min_rep_seconds / std::max(seconds, 1e-9));
    calls = static_cast<std::uint64_t>(static_cast<double>(calls) * scale);
    seconds = run(calls);
  }

  std::vector<double> per_op(static_cast<std::size_t>(opt.reps));
  per_op[0] = seconds * 1e9 /
              (static_cast<double>(calls) * static_cast<double>(ops_per_call));
  for (int r = 1; r < opt.reps; ++r) {
    per_op[static_cast<std::size_t>(r)] =
        run(calls) * 1e9 /
        (static_cast<double>(calls) * static_cast<double>(ops_per_call));
  }
  std::sort(per_op.begin(), per_op.end());
  return Timing{per_op[per_op.size() / 2], calls, opt.reps};
}

// ---------------------------------------------------------------------------
// Negative lookups (--miss-rate). Arriving segments that match no PCB are
// real traffic — stray RSTs, packets for just-closed connections, scans —
// and their cost differs sharply by structure: a linear scan walks the
// whole list to conclude "no", a hashed table walks one chain, the flat
// table usually answers from fingerprint tags alone. The helpers below
// give every wallclock bench the same deterministic way to blend them in.
// ---------------------------------------------------------------------------

/// Fully-specified keys guaranteed absent from `present`: same server half
/// (so they hash into the same tables), foreign half drawn from the
/// RFC 2544 benchmarking block 198.18/15 — outside every synthetic client
/// population this repo generates — and checked against `present` anyway,
/// so the guarantee holds even for pcap-derived key sets.
inline std::vector<net::FlowKey> make_absent_keys(
    std::span<const net::FlowKey> present, std::size_t count,
    std::uint64_t seed = 0xab5e47) {
  std::unordered_set<net::FlowKey> taken(present.begin(), present.end());
  sim::Rng rng(seed);
  net::FlowKey proto;
  if (!present.empty()) {
    proto.local_addr = present.front().local_addr;
    proto.local_port = present.front().local_port;
  } else {
    proto.local_addr = net::Ipv4Addr(10, 0, 0, 1);
    proto.local_port = 1521;
  }
  std::vector<net::FlowKey> absent;
  absent.reserve(count);
  while (absent.size() < count) {
    net::FlowKey k = proto;
    k.foreign_addr = net::Ipv4Addr(
        0xc6120000u | static_cast<std::uint32_t>(rng.uniform_index(1u << 17)));
    k.foreign_port =
        static_cast<std::uint16_t>(1024 + rng.uniform_index(64512));
    if (taken.insert(k).second) absent.push_back(k);
  }
  return absent;
}

/// Decides hit-or-miss per lookup with an error accumulator instead of an
/// RNG: exactly deterministic, evenly spread, and free inside timed loops.
/// rate 0 never fires; rate 0.25 fires every 4th call.
class MissSequencer {
 public:
  explicit MissSequencer(double rate) noexcept : rate_(rate) {}

  [[nodiscard]] bool next_is_miss() noexcept {
    acc_ += rate_;
    if (acc_ >= 1.0) {
      acc_ -= 1.0;
      return true;
    }
    return false;
  }

 private:
  double rate_;
  double acc_ = 0.0;
};

// ---------------------------------------------------------------------------
// Command line shared by the wallclock_* binaries:
//   --json <path>       export a JSON record array (report/bench_json.h)
//   --telemetry <path>  dump per-demuxer telemetry (report/telemetry_json.h)
//                       alongside the timings
//   --sizes <a,b,...>   restrict a population-sweep bench to these sizes;
//                       "500k"/"2m" suffixes scale by 1e3/1e6 (overhead A/B
//                       runs re-measure one size many times)
//   --miss-rate <f>     blend f (in [0,1]) negative lookups into the key
//                       stream (keys absent from the table, see above);
//                       1.0 = every lookup misses, the pure negative axis
//   --smoke             minimum-size, minimum-rep run for CI sanity checking
// ---------------------------------------------------------------------------

struct BenchOptions {
  bool smoke = false;
  std::string json_path;       ///< empty = no JSON export
  std::string telemetry_path;  ///< empty = no telemetry export
  double miss_rate = 0.0;      ///< fraction of lookups on absent keys
  std::vector<std::uint32_t> sizes;  ///< empty = the bench's default sweep

  /// Rep/time budget honouring --smoke: CI only needs "it runs and the
  /// numbers are plausible", not statistical confidence.
  [[nodiscard]] TimeLoopOptions timing() const {
    return smoke ? TimeLoopOptions{3, 0.002} : TimeLoopOptions{};
  }
};

inline BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (arg == "--telemetry" && i + 1 < argc) {
      opts.telemetry_path = argv[++i];
    } else if (arg == "--miss-rate" && i + 1 < argc) {
      char* end = nullptr;
      opts.miss_rate = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || opts.miss_rate < 0.0 ||
          opts.miss_rate > 1.0) {
        std::fprintf(stderr, "--miss-rate: need a fraction in [0, 1]\n");
        std::exit(2);
      }
    } else if (arg == "--sizes" && i + 1 < argc) {
      const std::string list = argv[++i];
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        const std::string item = list.substr(pos, comma - pos);
        char* end = nullptr;
        unsigned long long v = std::strtoull(item.c_str(), &end, 10);
        // Scale suffix for population sizes: "500k" and "2m" read better
        // than raw digit strings in the multi-million-PCB sweeps.
        if (end != nullptr && (*end == 'k' || *end == 'K')) {
          v *= 1000ULL;
          ++end;
        } else if (end != nullptr && (*end == 'm' || *end == 'M')) {
          v *= 1000000ULL;
          ++end;
        }
        if (v == 0 || v > 0xffffffffULL || end == nullptr || *end != '\0' ||
            end == item.c_str()) {
          std::fprintf(stderr, "--sizes: bad size list '%s'\n", list.c_str());
          std::exit(2);
        }
        opts.sizes.push_back(static_cast<std::uint32_t>(v));
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json <path>] [--telemetry <path>] "
                   "[--sizes <a,b,...>] [--miss-rate <f>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opts;
}

/// Writes the accumulated records if --json was given. Exits non-zero on
/// I/O failure so CI catches a bad path instead of silently shipping no
/// file.
inline void finish_json(const report::BenchJsonWriter& writer,
                        const BenchOptions& opts) {
  if (opts.json_path.empty()) return;
  if (!writer.write_file(opts.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", opts.json_path.c_str());
    std::exit(1);
  }
}

/// Snapshots one measured demuxer into a telemetry report (counters,
/// histograms if the bench enabled them, occupancy at end of run).
inline report::TelemetryReport telemetry_report_of(
    const std::string& source, const core::Demuxer& demuxer) {
  report::TelemetryReport rec;
  rec.source = source;
  rec.algorithm = demuxer.name();
  rec.telemetry = demuxer.telemetry();
  rec.occupancy = demuxer.occupancy();
  return rec;
}

/// Writes the accumulated telemetry reports if --telemetry was given.
/// Exits non-zero on I/O failure, exactly like finish_json.
inline void finish_telemetry(std::span<const report::TelemetryReport> reports,
                             const BenchOptions& opts) {
  if (opts.telemetry_path.empty()) return;
  if (!report::write_telemetry_json(opts.telemetry_path, reports)) {
    std::fprintf(stderr, "failed to write %s\n", opts.telemetry_path.c_str());
    std::exit(1);
  }
}

}  // namespace tcpdemux::bench

#endif  // TCPDEMUX_BENCH_BENCH_UTIL_H_
