// Shared helpers for the table/figure benches: standard TPC/A runs and
// paper-vs-model-vs-simulation formatting.
#ifndef TCPDEMUX_BENCH_BENCH_UTIL_H_
#define TCPDEMUX_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/demux_registry.h"
#include "sim/replay.h"
#include "sim/tpca_workload.h"

namespace tcpdemux::bench {

struct TpcaRun {
  std::uint32_t users = 2000;
  double response_time = 0.2;
  double rtt = 0.001;
  double duration = 200.0;
  double warmup = 20.0;
  bool open_loop = true;      // match the paper's analysis assumptions
  bool truncate_think = false;
  std::uint64_t seed = 42;
};

/// Generates the TPC/A trace for `run` and replays it through a freshly
/// constructed demuxer described by `config`.
inline sim::ReplayResult run_tpca(const TpcaRun& run,
                                  const core::DemuxConfig& config) {
  sim::TpcaWorkloadParams p;
  p.users = run.users;
  p.response_time = run.response_time;
  p.rtt = run.rtt;
  p.duration = run.duration;
  p.warmup = run.warmup;
  p.open_loop = run.open_loop;
  p.truncate_think = run.truncate_think;
  p.seed = run.seed;
  const sim::Trace trace = sim::generate_tpca_trace(p);
  const auto demuxer = core::make_demuxer(config);
  return sim::replay_trace(trace, *demuxer);
}

/// Replays one pre-generated trace through a fresh demuxer (use when
/// several algorithms must see the identical arrival stream).
inline sim::ReplayResult replay(const sim::Trace& trace,
                                const core::DemuxConfig& config) {
  const auto demuxer = core::make_demuxer(config);
  return sim::replay_trace(trace, *demuxer);
}

inline core::DemuxConfig config_of(std::string_view spec) {
  const auto config = core::parse_demux_spec(spec);
  if (!config) throw std::invalid_argument("bad demux spec");
  return *config;
}

}  // namespace tcpdemux::bench

#endif  // TCPDEMUX_BENCH_BENCH_UTIL_H_
