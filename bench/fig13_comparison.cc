// Figure 13: comparison of TCP demultiplexing algorithms, 0-10,000 TPC/A
// connections.
//
// Lines as in the paper: BSD; Crowcroft move-to-front at R = 1.0, 0.5, and
// 0.2 s ("MTF 1.0" etc.); Partridge/Pink send-receive cache at D = 1 ms
// ("SR 1"); and the Sequent algorithm (H = 19, R = 0.2 s). The expected
// shape: BSD ~N/2 on top, SR 1 approaching it from below, the MTF family
// in between, Sequent an order of magnitude below everything.
#include "fig_compare.h"

int main() {
  using namespace tcpdemux::bench;
  run_figure(
      "Figure 13: comparison of TCP demultiplexing algorithms",
      {
          {"BSD", 'B', "bsd", 0.2, 0.001, bsd_line},
          {"MTF 1.0", '1', "mtf", 1.0, 0.001, mtf_line},
          {"MTF 0.5", '5', "mtf", 0.5, 0.001, mtf_line},
          {"MTF 0.2", '2', "mtf", 0.2, 0.001, mtf_line},
          {"SR 1", 'S', "srcache", 0.2, 0.001, sr_line},
          {"SEQUENT", 'Q', "sequent:19:crc32", 0.2, 0.001, sequent_line},
      },
      10000, 500, {1000, 2000, 4000});
  return 0;
}
