// Table T5 (paper §3.5): more hash chains beat move-to-front-inside-chains.
//
// "One could imagine combining move-to-front with hash chains. However,
// better results can be obtained simply by increasing the number of hash
// chains. For example, if the number of hash chains ... is increased from
// 19 to 100, the average number of PCBs searched drops from 53 to less
// than 9. This factor-of-five improvement compares favorably with the
// best-case factor-of-two improvement that would be obtained by adding
// move-to-front."
#include <iostream>

#include "analytic/sequent_model.h"
#include "bench_util.h"
#include "report/table.h"
#include "sim/tpca_workload.h"

int main() {
  using namespace tcpdemux;
  constexpr double kRate = 0.1;
  constexpr double kResponse = 0.2;

  std::cout << "=== T5 (sec 3.5): hash chains vs the MTF combination, "
               "N = 2000 ===\n\n";

  // One trace, every structure.
  sim::TpcaWorkloadParams p;
  p.users = 2000;
  p.duration = 200.0;
  p.warmup = 20.0;
  p.open_loop = true;
  p.truncate_think = false;
  const sim::Trace trace = sim::generate_tpca_trace(p);

  report::Table table({"structure", "model", "simulated"});
  for (const std::uint32_t h : {19u, 51u, 100u}) {
    const auto r = bench::replay(
        trace, bench::config_of("sequent:" + std::to_string(h) + ":crc32"));
    table.add_row(
        {"sequent H=" + std::to_string(h),
         report::fmt(analytic::sequent_cost_exact(2000, h, kRate, kResponse),
                     1),
         report::fmt(r.overall.mean(), 1)});
  }
  table.add_rule();
  for (const std::uint32_t h : {19u, 51u, 100u}) {
    const auto r = bench::replay(
        trace,
        bench::config_of("hashed_mtf:" + std::to_string(h) + ":crc32"));
    table.add_row({"hashed MTF H=" + std::to_string(h), "-",
                   report::fmt(r.overall.mean(), 1)});
  }
  table.add_rule();
  const auto conn_id = bench::replay(trace, bench::config_of("connection_id"));
  table.add_row({"connection-ID index (TP4/XTP)", "1.0",
                 report::fmt(conn_id.overall.mean(), 1)});
  table.print(std::cout);

  const auto seq19 = bench::replay(trace, bench::config_of("sequent:19:crc32"));
  const auto seq100 =
      bench::replay(trace, bench::config_of("sequent:100:crc32"));
  const auto mtf19 =
      bench::replay(trace, bench::config_of("hashed_mtf:19:crc32"));
  std::cout << "\nfactor from 19 -> 100 chains: "
            << report::fmt(seq19.overall.mean() / seq100.overall.mean(), 1)
            << "x (paper: ~5x)\n"
            << "factor from adding MTF at H=19: "
            << report::fmt(seq19.overall.mean() / mtf19.overall.mean(), 2)
            << "x (paper: at best ~2x)\n"
            << "conclusion: grow H; the combination is not worth it, and "
               "cheap hashing removes the case for protocol connection "
               "IDs\n";
  return 0;
}
