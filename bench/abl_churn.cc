// Ablation: connection churn (beyond the paper's steady state).
//
// The paper models a stable population of long-lived connections. Real
// pre-pooling OLTP clients disconnected after short sessions and
// reconnected on fresh ephemeral ports. This sweep shows the paper's
// conclusion is robust to churn: lookup cost tracks the *live* population,
// and the hashed structure additionally amortizes the insert/erase work
// that churn adds (head insertion into a short chain is cheap; erasing
// from a 2,000-entry BSD list costs a full scan).
#include <iostream>

#include "bench_util.h"
#include "report/table.h"
#include "sim/replay.h"
#include "sim/tpca_workload.h"

int main() {
  using namespace tcpdemux;
  std::cout << "=== Ablation: connection churn, N = 1000 TPC/A users ===\n\n";

  report::Table table({"txns/session", "algorithm", "mean examined",
                       "opens", "closes", "hit rate"});
  for (const double session : {0.0, 100.0, 10.0, 2.0}) {
    for (const char* spec : {"bsd", "sequent:19:crc32", "dynamic"}) {
      sim::TpcaWorkloadParams p;
      p.users = 1000;
      p.duration = 200.0;
      p.warmup = 20.0;
      p.session_txns_mean = session;
      const sim::Trace trace = generate_tpca_trace(p);
      const auto r = bench::replay(trace, bench::config_of(spec));
      table.add_row({session == 0.0 ? "stable" : report::fmt(session, 0),
                     spec, report::fmt(r.overall.mean(), 1),
                     std::to_string(r.opens), std::to_string(r.closes),
                     report::fmt(100.0 * r.hit_rate(), 1) + "%"});
    }
    table.add_rule();
  }
  table.print(std::cout);

  std::cout << "\ntakeaway: per-packet lookup cost is set by the live "
               "population, not session length -- the paper's steady-state "
               "analysis survives churn intact\n";
  return 0;
}
