// Table T1 (paper §3.1): the BSD algorithm under TPC/A.
//
// Paper values at N = 2000 (200 TPC/A TPS): expected search 1,001.0 PCBs;
// cache hit rate 1/N = 0.05%; packet-train probability e^{-2aR(N-1)}
// ~ 1.9e-35 at R = 0.2 s (printed as "1.9e-3[5]" in the paper's text).
#include <iostream>

#include "analytic/bsd_model.h"
#include "bench_util.h"
#include "report/table.h"

int main() {
  using namespace tcpdemux;
  std::cout << "=== T1 (sec 3.1): BSD linear list + one-entry cache ===\n\n";

  report::Table table({"users", "Eq 1 (model)", "simulated", "sim hit rate",
                       "model hit rate"});
  for (const std::uint32_t n : {200u, 500u, 1000u, 2000u}) {
    bench::TpcaRun run;
    run.users = n;
    run.duration = n >= 2000 ? 120.0 : 200.0;
    const auto r = bench::run_tpca(run, bench::config_of("bsd"));
    table.add_row({std::to_string(n),
                   report::fmt(analytic::bsd_cost(n), 1),
                   report::fmt(r.overall.mean(), 1),
                   report::fmt(100.0 * r.hit_rate(), 2) + "%",
                   report::fmt(100.0 / n, 2) + "%"});
  }
  table.print(std::cout);

  std::cout << "\npaper: N=2000 costs 1001 PCBs; hit rate 0.05%\n\n";

  report::Table trains({"response time R", "packet-train probability"});
  for (const double r : {0.05, 0.1, 0.2, 0.5}) {
    trains.add_row({report::fmt(r, 2) + " s",
                    report::fmt_sci(
                        analytic::bsd_packet_train_probability(2000, 0.1, r),
                        1)});
  }
  trains.print(std::cout);
  std::cout << "\npaper: ~1.9e-35 at R = 0.2 s -- the one-entry cache "
               "cannot help OLTP traffic\n";
  return 0;
}
