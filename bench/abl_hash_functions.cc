// Ablation: hash-function quality over realistic client populations.
//
// The paper (§3.5) waves at [Jai89]/[McK91] for "efficient hash functions
// for protocol addresses". This bench makes the choice concrete: chain
// balance and resulting lookup cost for seven candidate hashes over four
// client address/port layouts, including one adversarial to the historical
// BSD additive hash.
#include <iostream>

#include "bench_util.h"
#include "net/hash_quality.h"
#include "report/table.h"
#include "sim/address_space.h"
#include "sim/tpca_workload.h"

int main() {
  using namespace tcpdemux;
  constexpr std::uint32_t kClients = 2000;
  constexpr std::uint32_t kChains = 19;

  std::cout << "=== Ablation: flow-key hash functions (N = " << kClients
            << ", H = " << kChains << ") ===\n";

  const struct {
    sim::ClientPattern pattern;
    const char* name;
  } kPatterns[] = {
      {sim::ClientPattern::kSequentialHosts, "sequential LAN hosts"},
      {sim::ClientPattern::kConcentrators, "terminal concentrators"},
      {sim::ClientPattern::kRandom, "random internet clients"},
      {sim::ClientPattern::kAdversarialForModulo, "adversarial (anti-sum)"},
  };

  for (const auto& [pattern, pattern_name] : kPatterns) {
    sim::AddressSpaceParams ap;
    ap.clients = kClients;
    ap.pattern = pattern;
    const auto keys = sim::make_client_keys(ap);

    std::cout << "\n--- population: " << pattern_name << " ---\n";
    report::Table table({"hash", "max chain", "empty", "stddev",
                         "chi^2 (dof 18)", "expected scan"});
    for (const net::HasherKind kind : net::kAllHashers) {
      const auto q = net::evaluate_hash_quality(kind, keys, kChains);
      table.add_row({std::string(net::hasher_name(kind)),
                     std::to_string(q.max_chain),
                     std::to_string(q.empty_chains),
                     report::fmt(q.stddev_chain, 1),
                     report::fmt(q.chi_squared, 1),
                     report::fmt(q.expected_search, 1)});
    }
    table.print(std::cout);
  }

  // End-to-end effect: Sequent TPC/A cost per hasher on the concentrator
  // population (the realistic hard case).
  std::cout << "\n--- end-to-end: Sequent(H=19) TPC/A cost by hash, "
               "concentrator clients ---\n";
  sim::TpcaWorkloadParams tp;
  tp.users = kClients;
  tp.duration = 150.0;
  const sim::Trace trace = sim::generate_tpca_trace(tp);
  sim::AddressSpaceParams ap;
  ap.clients = kClients;
  ap.pattern = sim::ClientPattern::kConcentrators;
  const auto keys = sim::make_client_keys(ap);

  report::Table table({"hash", "mean PCBs examined", "uniform-chain ideal"});
  const double ideal = 0.5 * (kClients / static_cast<double>(kChains)) + 1.0;
  for (const net::HasherKind kind : net::kAllHashers) {
    core::DemuxConfig config;
    config.algorithm = core::Algorithm::kSequent;
    config.chains = kChains;
    config.hasher = kind;
    const auto demuxer = core::make_demuxer(config);
    const auto r = sim::replay_trace(trace, keys, *demuxer);
    table.add_row({std::string(net::hasher_name(kind)),
                   report::fmt(r.overall.mean(), 1),
                   report::fmt(ideal, 1)});
  }
  table.print(std::cout);
  std::cout << "\ntakeaway: any mixing hash works; additive folds collapse "
               "on structured populations, which is why H was prime (19) "
               "in the Sequent product\n";
  return 0;
}
