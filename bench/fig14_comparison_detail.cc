// Figure 14: detail of Figure 13 over 0-1,000 TPC/A connections, adding
// the "SR 10" line (send/receive cache at D = 10 ms).
//
// The expected shape: at small populations the send/receive cache with a
// fast network ("SR 1") beats BSD clearly and the 10 ms variant tracks BSD
// closely; the crossovers between the MTF family and the SR lines fall in
// the few-hundred-connection range; Sequent hugs the bottom axis.
#include "fig_compare.h"

int main() {
  using namespace tcpdemux::bench;
  run_figure(
      "Figure 14: comparison detail (0-1,000 connections)",
      {
          {"BSD", 'B', "bsd", 0.2, 0.001, bsd_line},
          {"SR 10", 'T', "srcache", 0.2, 0.010, sr_line},
          {"MTF 1.0", '1', "mtf", 1.0, 0.001, mtf_line},
          {"MTF 0.5", '5', "mtf", 0.5, 0.001, mtf_line},
          {"MTF 0.2", '2', "mtf", 0.2, 0.001, mtf_line},
          {"SR 1", 'S', "srcache", 0.2, 0.001, sr_line},
          {"SEQUENT", 'Q', "sequent:19:crc32", 0.2, 0.001, sequent_line},
      },
      1000, 50, {200, 600, 1000});
  return 0;
}
