// Shared driver for Figures 13 and 14: expected PCB search cost versus the
// number of TPC/A connections, for every algorithm the paper plots.
#ifndef TCPDEMUX_BENCH_FIG_COMPARE_H_
#define TCPDEMUX_BENCH_FIG_COMPARE_H_

#include <iostream>
#include <string>
#include <vector>

#include "analytic/bsd_model.h"
#include "analytic/crowcroft_model.h"
#include "analytic/sequent_model.h"
#include "analytic/srcache_model.h"
#include "bench_util.h"
#include "report/ascii_plot.h"
#include "report/table.h"

namespace tcpdemux::bench {

struct FigureLine {
  std::string label;
  char glyph;
  std::string demux_spec;          ///< for simulated points
  double response_time = 0.2;      ///< R used by this line's model
  double rtt = 0.001;              ///< D used by this line's model
  double (*model)(double users, double response_time, double rtt);
};

inline double bsd_line(double n, double, double) {
  return analytic::bsd_cost(n);
}
inline double mtf_line(double n, double r, double) {
  return 0.5 * (analytic::crowcroft_entry_cost(n, 0.1, r) +
                analytic::crowcroft_ack_cost(n, 0.1, r));
}
inline double sr_line(double n, double r, double d) {
  return analytic::SrCacheModel{}
      .search_cost(analytic::TpcaParams{n, 0.1, r, d})
      .overall;
}
inline double sequent_line(double n, double r, double) {
  return analytic::sequent_cost_exact(n, 19, 0.1, r);
}

/// Prints the model table and ASCII plot for a user sweep, with simulated
/// points at `sim_users` population sizes (kept small enough that every
/// bench finishes in seconds).
inline void run_figure(const std::string& title,
                       const std::vector<FigureLine>& lines,
                       std::uint32_t max_users, std::uint32_t step,
                       const std::vector<std::uint32_t>& sim_users) {
  std::cout << "=== " << title << " ===\n\n";

  // Model table + series.
  std::vector<std::string> headers = {"users"};
  for (const FigureLine& line : lines) headers.push_back(line.label);
  report::Table table(headers);
  std::vector<report::Series> series;
  for (const FigureLine& line : lines) {
    series.push_back(report::Series{line.label, line.glyph, {}, {}});
  }
  for (std::uint32_t n = step; n <= max_users; n += step) {
    std::vector<std::string> row = {std::to_string(n)};
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const double y =
          lines[i].model(n, lines[i].response_time, lines[i].rtt);
      row.push_back(report::fmt(y, 1));
      series[i].x.push_back(n);
      series[i].y.push_back(y);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << '\n';
  report::PlotOptions opts;
  opts.title = title + " (analytic models)";
  opts.x_label = "number of TPC/A TCP connections";
  plot(std::cout, series, opts);

  // Simulation check-points: identical trace per population, one replay
  // per algorithm.
  std::cout << "\nsimulated check-points (same trace per population):\n";
  std::vector<std::string> sim_headers = {"users"};
  for (const FigureLine& line : lines) {
    sim_headers.push_back(line.label + " model");
    sim_headers.push_back(line.label + " sim");
  }
  report::Table sim_table(sim_headers);
  for (const std::uint32_t n : sim_users) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const FigureLine& line : lines) {
      TpcaRun run;
      run.users = n;
      run.response_time = line.response_time;
      run.rtt = line.rtt;
      run.duration = n >= 2000 ? 60.0 : 150.0;
      const auto r = run_tpca(run, config_of(line.demux_spec));
      row.push_back(
          report::fmt(line.model(n, line.response_time, line.rtt), 1));
      row.push_back(report::fmt(r.overall.mean(), 1));
    }
    sim_table.add_row(std::move(row));
  }
  sim_table.print(std::cout);
}

}  // namespace tcpdemux::bench

#endif  // TCPDEMUX_BENCH_FIG_COMPARE_H_
