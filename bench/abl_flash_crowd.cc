// Ablation: a flash crowd — 2,000 users connecting over two minutes.
//
// The paper sizes H for a known population ("the installation default of
// 19 hash chains"). A ramping population makes that a moving target: fixed
// H=19 degrades linearly with the crowd, while the self-resizing table
// (core/dynamic_hash) rehashes as it fills and holds its cost flat. Cost
// is reported per ramp phase to show the divergence over time.
#include <iostream>

#include "bench_util.h"
#include "report/table.h"
#include "sim/flash_crowd_workload.h"
#include "sim/replay.h"

namespace {

using namespace tcpdemux;

/// Replays and buckets mean examined PCBs into time quarters.
std::array<double, 4> phased_cost(const sim::Trace& trace, double duration,
                                  core::Demuxer& demuxer,
                                  std::span<const net::FlowKey> keys) {
  std::array<double, 4> sums{};
  std::array<std::size_t, 4> counts{};
  // Local replay loop (the stock replay_trace does not keep timestamps).
  std::vector<core::Pcb*> pcbs(trace.connections, nullptr);
  for (const sim::TraceEvent& e : trace.events) {
    switch (e.kind) {
      case sim::TraceEventKind::kOpen:
        pcbs[e.conn] = demuxer.insert(keys[e.conn]);
        break;
      case sim::TraceEventKind::kClose:
        demuxer.erase(keys[e.conn]);
        break;
      case sim::TraceEventKind::kTransmit:
        if (pcbs[e.conn] != nullptr) demuxer.note_sent(pcbs[e.conn]);
        break;
      default: {
        const auto r = demuxer.lookup(
            keys[e.conn], e.kind == sim::TraceEventKind::kArrivalData
                              ? core::SegmentKind::kData
                              : core::SegmentKind::kAck);
        const auto phase = std::min<std::size_t>(
            3, static_cast<std::size_t>(e.time / (duration / 4)));
        sums[phase] += r.examined;
        ++counts[phase];
      }
    }
  }
  std::array<double, 4> means{};
  for (int i = 0; i < 4; ++i) {
    means[static_cast<std::size_t>(i)] =
        counts[static_cast<std::size_t>(i)] == 0
            ? 0.0
            : sums[static_cast<std::size_t>(i)] /
                  static_cast<double>(counts[static_cast<std::size_t>(i)]);
  }
  return means;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: flash crowd (0 -> 2000 users over 120 s) "
               "===\n\n";

  sim::FlashCrowdParams p;
  p.users = 2000;
  p.ramp = 120.0;
  p.duration = 240.0;
  const sim::Trace trace = generate_flash_crowd_trace(p);
  sim::AddressSpaceParams ap;
  ap.clients = trace.connections;
  const auto keys = sim::make_client_keys(ap);

  report::Table table({"structure", "0-25% of run", "25-50%", "50-75%",
                       "75-100%", "final shape"});
  for (const char* spec :
       {"bsd", "sequent:19:crc32", "sequent:1021:crc32", "dynamic"}) {
    const auto demuxer = core::make_demuxer(bench::config_of(spec));
    const auto phases = phased_cost(trace, p.duration, *demuxer, keys);
    table.add_row({spec, report::fmt(phases[0], 1),
                   report::fmt(phases[1], 1), report::fmt(phases[2], 1),
                   report::fmt(phases[3], 1), demuxer->name()});
  }
  table.print(std::cout);

  std::cout << "\ntakeaway: fixed H=19 tracks the crowd linearly (cost "
               "rises ~25x across the ramp); sizing for the peak (H=1021) "
               "or resizing on the fly keeps it flat -- the dynamic table "
               "is what production stacks ended up doing\n";
  return 0;
}
