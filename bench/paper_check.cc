// Self-verifying reproduction summary: every number the paper prints,
// recomputed and checked against tolerance in one run. Exits non-zero if
// any artifact drifts — EXPERIMENTS.md, executable.
#include <cstdlib>
#include <iostream>

#include "analytic/bsd_model.h"
#include "analytic/crowcroft_model.h"
#include "analytic/sequent_model.h"
#include "analytic/srcache_model.h"
#include "bench_util.h"
#include "report/table.h"

namespace {

using namespace tcpdemux;

struct Check {
  const char* artifact;
  double paper;
  double ours;
  double tolerance;  // absolute
};

}  // namespace

int main() {
  using analytic::TpcaParams;
  constexpr double kN = 2000;
  constexpr double kA = 0.1;

  std::cout << "=== Paper check: McKenney & Dove 1992, every published "
               "number ===\n\n";

  std::vector<Check> checks;
  // §3.1 BSD.
  checks.push_back({"Eq 1: BSD cost, N=2000", 1001.0,
                    analytic::bsd_cost(kN), 0.1});
  // §3.2 Crowcroft (paper convention: PCBs preceding the target).
  const double kResponses[] = {0.2, 0.5, 1.0, 2.0};
  const double kPaperEntry[] = {1019, 1045, 1086, 1150};
  const double kPaperAck[] = {78, 190, 362, 659};
  const double kPaperOverall[] = {549, 618, 724, 904};
  for (int i = 0; i < 4; ++i) {
    const double entry =
        analytic::crowcroft_entry_cost(kN, kA, kResponses[i]);
    const double ack = analytic::crowcroft_ack_cost(kN, kA, kResponses[i]);
    checks.push_back({"sec 3.2: MTF entry", kPaperEntry[i], entry, 1.1});
    checks.push_back({"sec 3.2: MTF ack", kPaperAck[i], ack, 0.5});
    checks.push_back(
        {"sec 3.2: MTF overall", kPaperOverall[i], 0.5 * (entry + ack), 0.6});
  }
  // §3.3 Partridge/Pink.
  const double kDelays[] = {0.001, 0.010, 0.100};
  const double kPaperSr[] = {667, 993, 1002};
  for (int i = 0; i < 3; ++i) {
    checks.push_back(
        {"sec 3.3: SR overall", kPaperSr[i],
         analytic::SrCacheModel{}
             .search_cost(TpcaParams{kN, kA, 0.2, kDelays[i]})
             .overall,
         0.7});
  }
  // §3.4 Sequent.
  checks.push_back({"Eq 22: Sequent exact, H=19", 53.0,
                    analytic::sequent_cost_exact(kN, 19, kA, 0.2), 0.05});
  checks.push_back({"Eq 19: Sequent approx, H=19", 53.6,
                    analytic::sequent_cost_approx(kN, 19), 0.05});
  checks.push_back({"Eq 20: quiet probability, H=19 (%)", 1.5,
                    100.0 * analytic::sequent_quiet_probability(kN, 19, kA,
                                                                0.2),
                    0.1});
  checks.push_back({"sec 3.5: Sequent H=100 (< 9)", 8.5,
                    analytic::sequent_cost_exact(kN, 100, kA, 0.2), 0.5});

  // Simulation spot-checks against the paper's headline numbers.
  bench::TpcaRun run;
  run.users = 2000;
  run.duration = 150.0;
  const double sim_bsd =
      bench::run_tpca(run, bench::config_of("bsd")).overall.mean();
  checks.push_back({"simulated BSD, N=2000", 1001.0, sim_bsd, 25.0});
  const double sim_seq =
      bench::run_tpca(run, bench::config_of("sequent:19:crc32"))
          .overall.mean();
  checks.push_back({"simulated Sequent(19), N=2000", 53.0, sim_seq, 3.0});

  report::Table table({"artifact", "paper", "ours", "delta", "verdict"});
  int failures = 0;
  for (const Check& c : checks) {
    const double delta = c.ours - c.paper;
    const bool ok = std::abs(delta) <= c.tolerance;
    if (!ok) ++failures;
    table.add_row({c.artifact, report::fmt(c.paper, 1),
                   report::fmt(c.ours, 1), report::fmt(delta, 2),
                   ok ? "PASS" : "FAIL"});
  }
  table.print(std::cout);

  // Qualitative figure claims.
  const auto at = [&](double n, auto&& f) { return f(n); };
  const double n10k = 10000;
  const double bsd = analytic::bsd_cost(n10k);
  const double sr1 = analytic::SrCacheModel{}
                         .search_cost(TpcaParams{n10k, kA, 0.2, 0.001})
                         .overall;
  const double mtf10 =
      analytic::CrowcroftModel{}
          .search_cost(TpcaParams{n10k, kA, 1.0, 0.001})
          .overall;
  const double mtf02 =
      analytic::CrowcroftModel{}
          .search_cost(TpcaParams{n10k, kA, 0.2, 0.001})
          .overall;
  const double seq = analytic::sequent_cost_exact(n10k, 19, kA, 0.2);
  const bool fig13 = bsd > sr1 && sr1 > mtf10 && mtf10 > mtf02 &&
                     mtf02 > 10.0 * seq;
  std::cout << "\nFigure 13 ordering at N=10,000 (BSD > SR1 > MTF1.0 > "
               "MTF0.2 > 10x Sequent): "
            << (fig13 ? "PASS" : "FAIL") << '\n';
  if (!fig13) ++failures;
  (void)at;

  std::cout << "\n" << (failures == 0 ? "ALL CHECKS PASS" : "FAILURES!")
            << " (" << checks.size() + 1 << " artifacts)\n";
  return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
