// The scenario matrix: every workload the WorkloadSpec grammar can
// produce, crossed with every demultiplexer family, timed end-to-end.
//
// Where wallclock_lookup times the steady-state lookup inner loop,
// this bench times *whole replays* — population insert, arrivals, acks,
// send-side notes, mid-trace opens and closes — so structures pay for
// their full lifecycle: insert cost under churn, erase cost under NAT
// binding reuse, pollution under floods. One row per (workload, demuxer)
// cell; the JSON artifact is the machine-checked matrix CI validates
// (tools/scenarios/validate_matrix.py) and EXPERIMENTS.md quotes.
//
// Workloads: the six synthetic generators plus one pcap-driven row. The
// bench synthesizes its own capture (trace -> wire packets -> pcap file)
// and re-imports it through the same sim/workloads/pcap_workload.h path a
// real tcpdump capture would take, so the import machinery is exercised
// end-to-end on every run without shipping a binary fixture.
//
//   wallclock_scenarios [--smoke] [--json <path>]
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/demux_registry.h"
#include "net/pcap.h"
#include "sim/trace_packets.h"
#include "sim/workloads/workload_spec.h"

namespace {

using namespace tcpdemux;

// Population ~2000 everywhere so the linear-scan algorithms stay tractable
// (their O(n) story is unambiguous at this size) and every structure sees
// comparable table pressure across rows.
std::vector<std::string> workload_specs(bool smoke) {
  if (smoke) {
    return {
        "tpca:users=300:duration=10",
        "zipf:flows=500:arrivals=20k:duration=10",
        "trains:conns=8:len=16:duration=5",
        "churn:users=50:session=4:think=0.5:ports=8:duration=20",
        "natpop:clients=200:nats=4:duration=10",
        "mix:flood=5%:base=zipf:flows=500:arrivals=20k:duration=10",
    };
  }
  return {
      "tpca:users=2000:duration=30",
      "zipf:flows=2000:arrivals=100k:duration=30",
      "trains:conns=64:len=16:duration=30",
      "churn:users=400:session=4:think=0.5:ports=8:duration=60",
      "natpop:clients=2000:nats=8:duration=40",
      "mix:flood=5%:base=zipf:flows=2000:arrivals=100k:duration=30",
  };
}

// One family per row of the paper's comparison, fixed-size hash structures
// sized for the ~2000-connection populations above.
std::vector<std::string> demux_specs() {
  return {"bsd",
          "mtf",
          "srcache",
          "sequent:251:crc32",
          "dynamic",
          "rcu:251:crc32",
          "flat:4096:crc32",
          "flat16:4096:crc32",
          "cuckoo:4096:crc32c"};
}

// Synthesizes a capture from a small TPC/A run and writes it where the
// pcap generator can re-import it, returning the workload spec string.
std::string make_self_capture(bool smoke) {
  using sim::workloads::make_workload;
  const auto base = make_workload(
      smoke ? "tpca:users=100:duration=10" : "tpca:users=500:duration=20");
  const auto packets = sim::synthesize_packets(base.trace, base.keys);

  const auto path = std::filesystem::temp_directory_path() /
                    "tcpdemux_wallclock_scenarios.pcap";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  net::PcapWriter writer(out);
  for (const auto& p : packets) writer.write(p.time, p.wire);
  out.close();
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  return "pcap:file=" + path.string();
}

struct Cell {
  double ns_per_event = 0.0;
  sim::ReplayResult result;
};

// Times R fresh-demuxer replays of the workload and keeps the median.
// A replay cannot be repeated on a populated demuxer (re-inserting every
// key would throw), so each rep pays construction + insert too — which is
// the point: lifecycle cost is part of the scenario story.
Cell run_cell(const sim::workloads::Workload& workload,
              const std::string& spec, int reps) {
  Cell cell;
  std::vector<double> ns(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto demuxer = core::make_demuxer(*core::parse_demux_spec(spec));
    const auto t0 = std::chrono::steady_clock::now();
    auto result = sim::replay_trace(workload, *demuxer);
    const auto t1 = std::chrono::steady_clock::now();
    ns[static_cast<std::size_t>(r)] =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(workload.trace.events.size());
    if (r == 0) cell.result = std::move(result);
  }
  std::sort(ns.begin(), ns.end());
  cell.ns_per_event = ns[ns.size() / 2];
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  report::BenchJsonWriter writer;
  const int reps = opts.smoke ? 1 : 3;

  std::vector<std::string> specs = workload_specs(opts.smoke);
  specs.push_back(make_self_capture(opts.smoke));

  for (const std::string& wspec : specs) {
    const auto workload = sim::workloads::make_workload(wspec);
    std::printf("%s  (%u conns, %zu events)\n", workload.name.c_str(),
                workload.trace.connections, workload.trace.events.size());
    std::printf("  %-22s %12s %14s %9s %8s\n", "demuxer", "ns/event",
                "pcbs_examined", "hit_rate", "misses");
    for (const std::string& dspec : demux_specs()) {
      const Cell cell = run_cell(workload, dspec, reps);
      const auto& res = cell.result;
      std::printf("  %-22s %12.1f %14.2f %9.3f %8llu\n", dspec.c_str(),
                  cell.ns_per_event, res.overall.mean(), res.hit_rate(),
                  static_cast<unsigned long long>(res.misses));

      report::BenchRecord rec;
      rec.bench = "wallclock_scenarios";
      rec.name = workload.name + "|" + dspec;
      rec.add_metric("ns_per_event", cell.ns_per_event);
      rec.add_metric("pcbs_examined", res.overall.mean());
      rec.add_metric("hit_rate", res.hit_rate());
      rec.add_metric("misses", static_cast<double>(res.misses));
      rec.add_metric("events",
                     static_cast<double>(workload.trace.events.size()));
      rec.add_metric("connections",
                     static_cast<double>(workload.trace.connections));
      rec.add_metric("opens", static_cast<double>(res.opens));
      rec.add_metric("closes", static_cast<double>(res.closes));
      writer.add(std::move(rec));
    }
    std::printf("\n");
  }

  bench::finish_json(writer, opts);
  return 0;
}
