// Wall-clock lookup cost under a collision flood: the adversarial
// companion to wallclock_lookup, and the measurement behind the
// "Adversarial resilience" section of DESIGN.md.
//
// Each scenario pre-populates a demuxer with a benign population plus a
// crafted attack population (sim/collision_flood.h), then times a mixed
// lookup stream (3 attack lookups : 1 benign) through the shared
// calibrated loop. Three defensive postures face the same crafted keys:
//
//   unkeyed   — the paper's configuration; the flood lands where the
//               attacker aimed it and lookups collapse to a linear scan;
//   keyed     — siphash with a secret seed; the attacker's offline
//               precomputation targeted the wrong function, so the flood
//               scatters like benign traffic;
//   rehash    — starts unkeyed; the watermark fires during the flood
//               inserts, the seed rotates, and the timed lookups run on
//               the recovered table (the `rehashes` column shows the
//               detector actually fired).
//
// The benign-only rows at the bottom price the defense when there is no
// attack: keyed-vs-unkeyed hashing overhead on well-behaved traffic.
//
//   wallclock_attack [--smoke] [--json <path>] [--telemetry <path>]
//
// --telemetry dumps each scenario's telemetry registry (counters including
// shed/rehash events, examined-PCB histograms, occupancy skew) so the
// flood's distributional damage — not just its mean — is captured.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/demux_registry.h"
#include "net/hashers.h"
#include "sim/address_space.h"
#include "sim/collision_flood.h"

namespace {

using namespace tcpdemux;

struct Scenario {
  std::string label;
  std::string spec;
  const std::vector<net::FlowKey>* attack = nullptr;  // null = benign only
};

// One fully built attack fixture: demuxer populated benign-first (the
// steady state the flood arrives into), then flooded.
struct AttackFixture {
  std::unique_ptr<core::Demuxer> demuxer;
  std::vector<net::FlowKey> sequence;  ///< timed lookup stream

  AttackFixture(const Scenario& s, const std::vector<net::FlowKey>& benign) {
    demuxer = core::make_demuxer(*core::parse_demux_spec(s.spec));
    std::vector<net::FlowKey> benign_in;
    std::vector<net::FlowKey> attack_in;
    for (const auto& k : benign) {
      if (demuxer->insert(k) != nullptr) benign_in.push_back(k);
    }
    if (s.attack != nullptr) {
      for (const auto& k : *s.attack) {
        if (demuxer->insert(k) != nullptr) attack_in.push_back(k);
      }
    }
    // 3:1 attack:benign interleave (benign-only scenarios fall back to a
    // pure benign stream). Distinct consecutive keys, so per-chain caches
    // see realistic miss traffic instead of one hot key.
    const std::vector<net::FlowKey>& hot =
        attack_in.empty() ? benign_in : attack_in;
    const std::size_t len = 4 * hot.size();
    sequence.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      sequence.push_back(i % 4 == 3 ? benign_in[(i / 4) % benign_in.size()]
                                    : hot[(3 * i / 4) % hot.size()]);
    }
    demuxer->reset_stats();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  report::BenchJsonWriter writer;
  std::vector<report::TelemetryReport> telemetry;

  // The flood must outgrow the chained watermark 16 + 8*(size/chains + 1)
  // for the rehash rows to demonstrate anything, so even the smoke attack
  // outweighs the benign population.
  const std::uint32_t benign_count = opts.smoke ? 512 : 2000;
  const std::uint32_t attack_count = opts.smoke ? 768 : 2000;

  sim::AddressSpaceParams ap;
  ap.clients = benign_count;
  const auto benign = sim::make_client_keys(ap);

  // The attacker precomputes against the PUBLISHED (unkeyed) functions.
  sim::CollisionFloodParams craft;
  craft.count = attack_count;
  const auto chain_flood = sim::craft_colliding_keys(
      craft,
      [](const net::FlowKey& k) {
        return net::hash_chain(net::HasherKind::kXorFold, k, 19);
      },
      7);
  // Full-32-bit collisions: beat the flat table's avalanche finalizer and
  // every post-mixed xor_fold seed; only siphash scatters them.
  const auto hash_flood = sim::craft_xorfold_collisions(craft, 0xabad1dea);
  // Slot-targeted crc32 flood for the flat rehash row (a fresh post-mixed
  // seed DOES re-scatter index-targeted keys; see net/hashers.h).
  const auto slot_flood = sim::craft_colliding_keys(
      craft,
      [](const net::FlowKey& k) {
        return net::mix32_avalanche(
                   net::hash_flow(net::HasherKind::kCrc32, k)) &
               8191u;
      },
      42);

  const std::vector<Scenario> scenarios = {
      {"sequent-flood-unkeyed", "sequent:19:xor_fold", &chain_flood},
      {"sequent-flood-keyed", "sequent:19:siphash@5eed", &chain_flood},
      {"sequent-flood-rehash", "sequent:19:xor_fold:rehash", &chain_flood},
      {"flat-flood-unkeyed", "flat:8192:xor_fold", &hash_flood},
      {"flat-flood-keyed", "flat:8192:siphash@5eed", &hash_flood},
      {"flat-flood-rehash", "flat:8192:crc32:rehash", &slot_flood},
      {"sequent-benign-unkeyed", "sequent:19:crc32", nullptr},
      {"sequent-benign-keyed", "sequent:19:siphash@5eed", nullptr},
      {"flat-benign-unkeyed", "flat:8192:crc32", nullptr},
      {"flat-benign-keyed", "flat:8192:siphash@5eed", nullptr},
  };

  std::printf("%-24s %-32s %12s %14s %9s %10s\n", "scenario", "demuxer",
              "ns/lookup", "pcbs_examined", "rehashes", "watermark");
  for (const Scenario& s : scenarios) {
    AttackFixture fx(s, benign);
    if (!opts.telemetry_path.empty()) {
      fx.demuxer->enable_telemetry_histograms(true);
    }
    constexpr std::size_t kChunk = 256;
    std::size_t i = 0;
    const std::size_t n = fx.sequence.size();
    const bench::Timing t = bench::time_loop(
        kChunk,
        [&] {
          for (std::size_t j = 0; j < kChunk; ++j) {
            bench::do_not_optimize(
                fx.demuxer->lookup(fx.sequence[i], core::SegmentKind::kData)
                    .pcb);
            if (++i == n) i = 0;
          }
        },
        opts.timing());

    const double examined = fx.demuxer->stats().mean_examined();
    const core::ResilienceStats r = fx.demuxer->resilience();
    std::printf("%-24s %-32s %12.1f %14.2f %9llu %10llu\n", s.label.c_str(),
                fx.demuxer->name().c_str(), t.ns_per_op, examined,
                static_cast<unsigned long long>(r.overload_rehashes),
                static_cast<unsigned long long>(r.watermark));

    report::BenchRecord rec;
    rec.bench = "wallclock_attack";
    rec.name = s.label;
    rec.add_metric("ns_per_lookup", t.ns_per_op);
    rec.add_metric("pcbs_examined", examined);
    rec.add_metric("rehashes", static_cast<double>(r.overload_rehashes));
    rec.add_metric("watermark", static_cast<double>(r.watermark));
    writer.add(std::move(rec));

    if (!opts.telemetry_path.empty()) {
      auto trec =
          bench::telemetry_report_of("bench/wallclock_attack", *fx.demuxer);
      trec.algorithm = s.label;
      telemetry.push_back(std::move(trec));
    }
  }

  bench::finish_json(writer, opts);
  bench::finish_telemetry(telemetry, opts);
  return 0;
}
