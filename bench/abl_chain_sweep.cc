// Ablation: how many chains do you actually need? (§3.4/§3.5's "the
// system administrator may increase the value of H ... at the expense of a
// small increase in the memory used for the hash chain headers")
//
// Sweeps H over three decades at N = 2000 TPC/A users, reporting the
// analytic and simulated search cost *and* the memory bill, then lets the
// self-tuning DynamicHashDemuxer pick its own table size for comparison.
#include <iostream>

#include "analytic/sequent_model.h"
#include "bench_util.h"
#include "report/table.h"
#include "sim/tpca_workload.h"

int main() {
  using namespace tcpdemux;
  constexpr std::uint32_t kUsers = 2000;

  std::cout << "=== Ablation: chain-count sweep, N = " << kUsers
            << " TPC/A users ===\n\n";

  sim::TpcaWorkloadParams p;
  p.users = kUsers;
  p.duration = 150.0;
  const sim::Trace trace = generate_tpca_trace(p);

  report::Table table({"H", "model (Eq 22)", "simulated", "hit rate",
                       "memory", "headers vs 1 chain"});
  std::size_t base_memory = 0;
  for (const std::uint32_t h :
       {1u, 3u, 7u, 19u, 51u, 101u, 257u, 509u, 1021u}) {
    core::DemuxConfig config;
    config.algorithm = core::Algorithm::kSequent;
    config.chains = h;
    config.hasher = net::HasherKind::kCrc32;
    const auto demuxer = core::make_demuxer(config);
    const auto r = sim::replay_trace(trace, *demuxer);
    const std::size_t memory = demuxer->memory_bytes();
    if (h == 1) base_memory = memory;
    table.add_row(
        {std::to_string(h),
         report::fmt(analytic::sequent_cost_exact(kUsers, h, 0.1, 0.2), 2),
         report::fmt(r.overall.mean(), 2),
         report::fmt(100.0 * r.hit_rate(), 1) + "%",
         std::to_string(memory / 1024) + " KiB",
         "+" + std::to_string((memory - base_memory) / 1024) + " KiB"});
  }
  table.print(std::cout);

  // The self-tuner.
  core::DemuxConfig dynamic;
  dynamic.algorithm = core::Algorithm::kDynamic;
  dynamic.chains = 19;
  dynamic.hasher = net::HasherKind::kCrc32;
  const auto demuxer = core::make_demuxer(dynamic);
  const auto r = sim::replay_trace(trace, *demuxer);
  std::cout << "\nself-tuning table (start 19, load cap 2.0): settled at "
            << demuxer->name() << ", mean "
            << report::fmt(r.overall.mean(), 2) << " PCBs, "
            << demuxer->memory_bytes() / 1024 << " KiB\n";

  std::cout << "\ntakeaway: chain headers are ~50 bytes each -- three "
               "decades of H cost less than 100 KiB while the scan length "
               "falls from ~1000 to ~2, which is the whole argument of "
               "sec 3.5\n";
  return 0;
}
