// Wall-clock cost of the flow-key hash functions (google-benchmark).
//
// §3.5: "The only added cost of the Sequent algorithm over BSD is the
// memory required for the hash-chain headers and the computation of the
// hash function itself." This bench shows that computation is nanoseconds
// for every candidate.
#include <benchmark/benchmark.h>

#include <vector>

#include "net/hashers.h"
#include "sim/address_space.h"

namespace {

using namespace tcpdemux;

void run_hash_bench(benchmark::State& state, net::HasherKind kind) {
  sim::AddressSpaceParams ap;
  ap.clients = 1024;
  ap.pattern = sim::ClientPattern::kRandom;
  const auto keys = sim::make_client_keys(ap);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::hash_flow(kind, keys[i]));
    i = (i + 1) & 1023;
  }
}

void BM_BsdModulo(benchmark::State& s) {
  run_hash_bench(s, net::HasherKind::kBsdModulo);
}
void BM_XorFold(benchmark::State& s) {
  run_hash_bench(s, net::HasherKind::kXorFold);
}
void BM_AddFold(benchmark::State& s) {
  run_hash_bench(s, net::HasherKind::kAddFold);
}
void BM_Multiplicative(benchmark::State& s) {
  run_hash_bench(s, net::HasherKind::kMultiplicative);
}
void BM_Crc32(benchmark::State& s) {
  run_hash_bench(s, net::HasherKind::kCrc32);
}
void BM_Jenkins(benchmark::State& s) {
  run_hash_bench(s, net::HasherKind::kJenkins);
}
void BM_Toeplitz(benchmark::State& s) {
  run_hash_bench(s, net::HasherKind::kToeplitz);
}

}  // namespace

BENCHMARK(BM_BsdModulo);
BENCHMARK(BM_XorFold);
BENCHMARK(BM_AddFold);
BENCHMARK(BM_Multiplicative);
BENCHMARK(BM_Crc32);
BENCHMARK(BM_Jenkins);
BENCHMARK(BM_Toeplitz);

BENCHMARK_MAIN();
