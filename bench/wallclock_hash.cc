// Wall-clock cost of the flow-key hash functions.
//
// §3.5: "The only added cost of the Sequent algorithm over BSD is the
// memory required for the hash-chain headers and the computation of the
// hash function itself." This bench shows that computation is nanoseconds
// for every candidate, using the shared calibrated timing loop.
//
//   wallclock_hash [--smoke] [--json <path>]
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "net/hashers.h"
#include "sim/address_space.h"

int main(int argc, char** argv) {
  using namespace tcpdemux;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  report::BenchJsonWriter writer;

  sim::AddressSpaceParams ap;
  ap.clients = 1024;
  ap.pattern = sim::ClientPattern::kRandom;
  const auto keys = sim::make_client_keys(ap);

  std::printf("%-16s %10s\n", "hasher", "ns/hash");
  for (const net::HasherKind kind : net::kAllHashers) {
    const bench::Timing t = bench::time_loop(
        keys.size(),
        [&] {
          std::uint32_t acc = 0;
          for (const auto& k : keys) acc ^= net::hash_flow(kind, k);
          bench::do_not_optimize(acc);
        },
        opts.timing());
    const auto name = net::hasher_name(kind);
    std::printf("%-16.*s %10.2f\n", static_cast<int>(name.size()),
                name.data(), t.ns_per_op);

    report::BenchRecord rec;
    rec.bench = "wallclock_hash";
    rec.name = std::string(name);
    rec.add_metric("ns_per_hash", t.ns_per_op);
    writer.add(std::move(rec));
  }

  bench::finish_json(writer, opts);
  return 0;
}
