// Wall-clock resize pauses: measures the per-operation latency
// distribution of every growing backend *through* a table doubling, with
// and without the `incremental` registry token — the experiment behind
// the bounded-pause claim in DESIGN.md "Incremental resize & degradation
// ladder".
//
// Per cell (spec x mode):
//   1. populate  — insert N PCBs (untimed; any growth here is warmup);
//   2. steady    — time individual lookups against the settled table and
//                  take p50/p99 as the steady-state reference;
//   3. growth    — insert N more PCBs one at a time, each insert followed
//                  by a few lookups of already-present keys, timing every
//                  operation individually. This phase crosses the next
//                  doubling: in baseline mode one insert pays the whole
//                  stop-the-world rehash; in incremental mode the drain
//                  rides along in O(batch) slices.
// Reported: steady p50/p99, growth-phase lookup p99, and the maximum
// single-operation pause. The growth phase runs `rounds` times on fresh
// tables and reports the minimum-over-rounds of the max pause, so a
// scheduler preemption on a shared host cannot masquerade as a rehash
// spike (a real stop-the-world pause recurs every round; jitter does
// not).
//
//   wallclock_resize [--smoke] [--json <path>] [--sizes <n[,n...]>]
//
// --sizes sets the starting population N for each measured cell (k/m
// suffixes accepted: "--sizes 2m" measures the 2M -> 4M growth of the
// acceptance experiment). Default 2m; --smoke drops to 64k and one
// round.
//
// Hugepage axis: on Linux each population size runs twice, with
// transparent hugepages left at the system default and with THP disabled
// for the process (prctl PR_SET_THP_DISABLE) — the growth phase touches
// fresh arrays, so TLB fill cost is part of the resize story.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include "bench_util.h"
#include "core/demux_registry.h"
#include "sim/address_space.h"

namespace {

using namespace tcpdemux;

#if !defined(PR_SET_THP_DISABLE)
#define PR_SET_THP_DISABLE 41
#endif

/// Sets the process-wide THP opt-out. Returns false when unsupported, in
/// which case the thp=off cells are skipped rather than mislabeled.
bool set_thp_disabled(bool disabled) {
#if defined(__linux__)
  return prctl(PR_SET_THP_DISABLE, disabled ? 1UL : 0UL, 0UL, 0UL, 0UL) == 0;
#else
  (void)disabled;
  return false;
#endif
}

double percentile(std::vector<std::uint32_t>& ns, double p) {
  if (ns.empty()) return 0.0;
  const std::size_t idx = std::min(
      ns.size() - 1, static_cast<std::size_t>(p * static_cast<double>(ns.size())));
  std::nth_element(ns.begin(), ns.begin() + static_cast<std::ptrdiff_t>(idx),
                   ns.end());
  return static_cast<double>(ns[idx]);
}

std::uint32_t elapsed_ns(std::chrono::steady_clock::time_point t0,
                         std::chrono::steady_clock::time_point t1) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return d > 0xffffffffLL ? 0xffffffffu
                          : static_cast<std::uint32_t>(d < 0 ? 0 : d);
}

struct CellResult {
  double steady_p50 = 0.0;
  double steady_p99 = 0.0;
  double growth_lookup_p99 = 0.0;
  double max_pause = 0.0;  ///< min over rounds of the per-round max op
  std::uint64_t resizes = 0;
};

/// One measured cell. `spec` must parse; `n` is the starting population.
CellResult run_cell(const std::string& spec, std::uint32_t n,
                    const std::vector<net::FlowKey>& keys, int rounds) {
  using clock = std::chrono::steady_clock;
  constexpr std::size_t kLookupsPerInsert = 3;
  CellResult out;

  std::vector<std::uint32_t> steady;
  std::vector<std::uint32_t> growth_lookups;
  std::vector<std::uint32_t> pauses;
  for (int round = 0; round < rounds; ++round) {
    const auto config = core::parse_demux_spec(spec);
    if (!config) {
      std::fprintf(stderr, "bad spec %s\n", spec.c_str());
      std::exit(2);
    }
    const auto demuxer = core::make_demuxer(*config);
    for (std::uint32_t i = 0; i < n; ++i) demuxer->insert(keys[i]);

    // Steady-state lookup latencies against the settled table (first
    // round only; the table state is identical every round).
    if (round == 0) {
      const std::size_t samples = std::min<std::size_t>(200000, n * 4);
      steady.reserve(samples);
      for (std::size_t i = 0; i < samples; ++i) {
        const net::FlowKey& k = keys[(i * 2654435761u) % n];
        const auto t0 = clock::now();
        bench::do_not_optimize(demuxer->lookup(k).pcb);
        const auto t1 = clock::now();
        steady.push_back(elapsed_ns(t0, t1));
      }
    }

    // Growth phase: N -> 2N PCBs, every op timed individually.
    growth_lookups.clear();
    growth_lookups.reserve(static_cast<std::size_t>(n) * kLookupsPerInsert);
    pauses.clear();
    pauses.reserve(static_cast<std::size_t>(n) * (1 + kLookupsPerInsert));
    for (std::uint32_t i = n; i < 2 * n; ++i) {
      auto t0 = clock::now();
      bench::do_not_optimize(demuxer->insert(keys[i]));
      auto t1 = clock::now();
      pauses.push_back(elapsed_ns(t0, t1));
      for (std::size_t j = 0; j < kLookupsPerInsert; ++j) {
        const net::FlowKey& k = keys[((i + j) * 2654435761u) % i];
        t0 = clock::now();
        bench::do_not_optimize(demuxer->lookup(k).pcb);
        t1 = clock::now();
        const std::uint32_t ns = elapsed_ns(t0, t1);
        growth_lookups.push_back(ns);
        pauses.push_back(ns);
      }
    }

    const double round_max = static_cast<double>(
        *std::max_element(pauses.begin(), pauses.end()));
    out.max_pause =
        round == 0 ? round_max : std::min(out.max_pause, round_max);
    if (round == 0) {
      out.resizes = demuxer->telemetry().counters().rehashes +
                    demuxer->telemetry().counters().resizes_started;
    }
  }
  out.steady_p50 = percentile(steady, 0.50);
  out.steady_p99 = percentile(steady, 0.99);
  out.growth_lookup_p99 = percentile(growth_lookups, 0.99);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  report::BenchJsonWriter writer;

  std::vector<std::uint32_t> sizes = {2000000};
  if (opts.smoke) sizes = {65536};
  if (!opts.sizes.empty()) sizes = opts.sizes;
  // Smoke gets an extra growth round: the max-pause metric is min-over-
  // rounds, and the small smoke tables make the one-time allocation spike
  // proportionally noisier.
  const int rounds = opts.smoke ? 3 : 2;

  // Every growing backend, stop-the-world vs incremental. Initial
  // capacities are deliberately small: the populate phase grows the table
  // to fit N, so the growth phase measures a doubling at full size.
  const std::vector<std::string> bases = {"flat:1024:crc32c",
                                          "flat16:1024:crc32c",
                                          "cuckoo:1024:crc32c",
                                          "dynamic:1024:crc32c"};

  std::printf("%-38s %8s %7s %10s %10s %12s %12s %8s\n", "cell", "users",
              "thp", "steady_p50", "steady_p99", "growth_p99", "max_pause",
              "resizes");
  for (const std::uint32_t n : sizes) {
    sim::AddressSpaceParams ap;
    ap.clients = 2 * n;
    const auto keys = sim::make_client_keys(ap);

    // thp axis: default first, then disabled (full runs only — the smoke
    // gate needs speed, not the TLB story).
    std::vector<int> thp_cells = {0};
    if (!opts.smoke) thp_cells.push_back(1);
    for (const int thp_off : thp_cells) {
      if (thp_off == 1 && !set_thp_disabled(true)) continue;
      for (const std::string& base : bases) {
        for (const bool incremental : {false, true}) {
          const std::string spec =
              incremental ? base + ":incremental" : base;
          const std::string mode =
              incremental ? "incremental" : "baseline";
          const CellResult r = run_cell(spec, n, keys, rounds);
          const std::string cell = base + "/" + mode;
          std::printf("%-38s %8u %7s %10.0f %10.0f %12.0f %12.0f %8llu\n",
                      cell.c_str(), n, thp_off != 0 ? "off" : "default",
                      r.steady_p50, r.steady_p99, r.growth_lookup_p99,
                      r.max_pause,
                      static_cast<unsigned long long>(r.resizes));

          report::BenchRecord rec;
          rec.bench = "wallclock_resize";
          rec.name = cell;
          rec.add_metric("users", n);
          rec.add_metric("incremental", incremental ? 1 : 0);
          rec.add_metric("thp_disabled", thp_off);
          rec.add_metric("steady_p50_ns", r.steady_p50);
          rec.add_metric("steady_p99_ns", r.steady_p99);
          rec.add_metric("growth_lookup_p99_ns", r.growth_lookup_p99);
          rec.add_metric("max_pause_ns", r.max_pause);
          rec.add_metric("resizes", static_cast<double>(r.resizes));
          writer.add(std::move(rec));
        }
      }
      if (thp_off == 1) set_thp_disabled(false);
    }
  }

  bench::finish_json(writer, opts);
  return 0;
}
