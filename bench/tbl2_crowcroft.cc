// Table T2 (paper §3.2): Crowcroft's move-to-front list under TPC/A.
//
// Paper values for N = 2000, response times 0.2 / 0.5 / 1.0 / 2.0 s:
//   transaction entry: 1019 / 1045 / 1086 / 1150 PCBs
//   response ack:        78 /  190 /  362 /  659 PCBs
//   overall:            549 /  618 /  724 /  904 PCBs
// plus the deterministic-think-time worst case (point-of-sale polling):
// a full scan of all N PCBs per entry.
#include <iostream>

#include "analytic/crowcroft_model.h"
#include "bench_util.h"
#include "report/table.h"
#include "sim/polling_workload.h"
#include "sim/replay.h"

int main() {
  using namespace tcpdemux;
  constexpr double kUsers = 2000;
  constexpr double kRate = 0.1;

  std::cout << "=== T2 (sec 3.2): move-to-front list, N = 2000 ===\n"
            << "(model counts PCBs preceding the target, as the paper "
               "does; the\n simulated column counts the found PCB too, "
               "hence ~+1)\n\n";

  report::Table table({"R (s)", "entry model", "entry sim", "ack model",
                       "ack sim", "overall model", "overall sim",
                       "paper overall"});
  const double paper_overall[] = {549, 618, 724, 904};
  int i = 0;
  for (const double resp : {0.2, 0.5, 1.0, 2.0}) {
    bench::TpcaRun run;
    run.users = 2000;
    run.response_time = resp;
    run.duration = 120.0;
    const auto r = bench::run_tpca(run, bench::config_of("mtf"));
    const double entry = analytic::crowcroft_entry_cost(kUsers, kRate, resp);
    const double ack = analytic::crowcroft_ack_cost(kUsers, kRate, resp);
    table.add_row({report::fmt(resp, 1), report::fmt(entry, 1),
                   report::fmt(r.data.mean(), 1), report::fmt(ack, 1),
                   report::fmt(r.ack.mean(), 1),
                   report::fmt(0.5 * (entry + ack), 1),
                   report::fmt(r.overall.mean(), 1),
                   report::fmt(paper_overall[i++], 0)});
  }
  table.print(std::cout);

  // Worst case: deterministic rotation (point-of-sale terminals).
  sim::PollingWorkloadParams p;
  p.terminals = 2000;
  p.period = 10.0;
  p.duration = 40.0;
  const auto demuxer = core::make_demuxer(bench::config_of("mtf"));
  const auto polling =
      sim::replay_trace(sim::generate_polling_trace(p), *demuxer);
  std::cout << "\ndeterministic think time (polling, N=2000): entry scan = "
            << report::fmt(polling.data.mean(), 1)
            << " PCBs (paper: all 2000)\n";
  return 0;
}
