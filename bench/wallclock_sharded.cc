// Per-core sharded receive path vs shared-structure SMP baselines.
//
// The sharded demuxer's claim is architectural: RSS steering gives every
// core a private PCB table, so the receive path scales without a single
// atomic instruction — no lock to stripe, no epoch to enter, no cache
// line ever written by two cores. This bench runs that head-to-head on a
// 200k-connection population (paper-scale "hundreds or thousands" pushed
// to modern server counts):
//
//   sharded:N        ShardedDemuxer, thread i driving shard(i) with the
//                    key stream RSS would steer to it (pre-partitioned by
//                    home shard — the deployment shape, where the NIC has
//                    already done the split before software runs)
//   global_lock/*    one big mutex around a single table (naive SMP port)
//   striped/*        per-chain locks (Sequent's own design, [Dov90])
//   rcu/*            lock-free reads + epoch reclaim
//
// The shared-structure baselines see the same aggregate op stream, all
// threads drawing from the full key population. Mix rows add connection
// churn (erase+reinsert) at `writes` per 1024 ops; sharded churn stays
// shard-local, which is exactly the point — a connection's whole life is
// steered to one core.
//
// The NIC telemetry rows quantify the cost of the escape hatch: a
// NicDispatch churn replay with a quarter of the NIC's indirection table
// deliberately rewritten records the mis-steer rate, handoff queue depth,
// occupancy skew, and — the invariant the tests pin — zero lost frames
// and zero duplicate inserts, exported for ci/validate_sharded.py to gate.
//
// On a single-core host threads time-slice, so expect the no-atomics win
// to show as a constant factor rather than a scaling curve (same caveat
// as wallclock_parallel).
//
//   wallclock_sharded [--smoke] [--json <path>]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/concurrent_demuxer.h"
#include "core/demux_registry.h"
#include "core/rcu_demuxer.h"
#include "core/sharded_demuxer.h"
#include "sim/address_space.h"
#include "sim/nic_dispatch.h"
#include "sim/workloads/churn_workload.h"

namespace {

using namespace tcpdemux;

std::uint32_t next_state(std::uint32_t& state) {
  state = state * 1664525u + 1013904223u;
  return state;
}

// Spin-barrier thread harness, aggregate wall ns/op, median over reps
// (same scheme as wallclock_parallel so rows are comparable).
double threaded_ns_per_op(
    int nthreads, std::uint64_t ops_per_thread, int reps,
    const std::function<void(int, std::uint64_t)>& body) {
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (!go.load(std::memory_order_acquire)) {
        }
        body(t, ops_per_thread);
      });
    }
    while (ready.load(std::memory_order_acquire) != nthreads) {
    }
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    samples.push_back(seconds * 1e9 /
                      (static_cast<double>(ops_per_thread) * nthreads));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Shared-structure body: all threads draw from the whole population.
template <typename D>
std::function<void(int, std::uint64_t)> shared_body(
    D& d, const std::vector<net::FlowKey>& keys,
    std::uint32_t writes_per_1024) {
  return [&d, &keys, writes_per_1024](int thread_index, std::uint64_t ops) {
    std::uint32_t prng =
        static_cast<std::uint32_t>(thread_index + 1) * 2654435761u;
    const std::uint32_t n = static_cast<std::uint32_t>(keys.size());
    for (std::uint64_t op = 0; op < ops; ++op) {
      const std::uint32_t s = next_state(prng);
      const net::FlowKey& k = keys[s % n];
      if ((s >> 21) % 1024 < writes_per_1024) {
        d.erase(k);
        d.insert(k);
      } else {
        bench::do_not_optimize(d.lookup(k).pcb);
      }
    }
  };
}

// Sharded body: thread i drives shard(i) with only the keys RSS homes
// there. Churn stays shard-local (insert back on the same shard the flow
// was steered to), so no cross-thread line is ever written.
std::function<void(int, std::uint64_t)> sharded_body(
    core::ShardedDemuxer& d,
    const std::vector<std::vector<net::FlowKey>>& partition,
    std::uint32_t writes_per_1024) {
  return [&d, &partition, writes_per_1024](int thread_index,
                                           std::uint64_t ops) {
    core::Demuxer& shard =
        d.shard(static_cast<std::uint32_t>(thread_index));
    const std::vector<net::FlowKey>& keys =
        partition[static_cast<std::size_t>(thread_index)];
    const std::uint32_t n = static_cast<std::uint32_t>(keys.size());
    if (n == 0) return;
    std::uint32_t prng =
        static_cast<std::uint32_t>(thread_index + 1) * 2654435761u;
    for (std::uint64_t op = 0; op < ops; ++op) {
      const std::uint32_t s = next_state(prng);
      const net::FlowKey& k = keys[s % n];
      if ((s >> 21) % 1024 < writes_per_1024) {
        shard.erase(k);
        shard.insert(k);
      } else {
        bench::do_not_optimize(shard.lookup(k).pcb);
      }
    }
  };
}

double occupancy_skew(const core::ShardedDemuxer& d) {
  const auto occ = d.occupancy();
  const std::size_t worst = *std::max_element(occ.begin(), occ.end());
  const double mean = static_cast<double>(d.size()) /
                      static_cast<double>(occ.size());
  return mean == 0.0 ? 0.0 : static_cast<double>(worst) / mean;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  report::BenchJsonWriter writer;

  const std::uint32_t connections = opts.smoke ? 20'000 : 200'000;
  const std::uint64_t total_ops = opts.smoke ? 100'000 : 4'000'000;
  const int reps = opts.smoke ? 1 : 3;
  std::vector<int> thread_counts = {1, 2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 4) thread_counts.push_back(hw);
  if (opts.smoke) thread_counts = {1, 2, 4};

  sim::AddressSpaceParams ap;
  ap.clients = connections;
  const std::vector<net::FlowKey> keys = sim::make_client_keys(ap);

  std::printf("sharded receive path, %u connections\n", connections);
  std::printf("%-28s %8s %7s %12s %8s\n", "structure", "threads", "w/1024",
              "ns/op(agg)", "skew");

  const auto record = [&](const std::string& name, int threads,
                          std::uint32_t writes, double ns, double skew) {
    std::printf("%-28s %8d %7u %12.1f %8.3f\n", name.c_str(), threads,
                writes, ns, skew);
    report::BenchRecord rec;
    rec.bench = "wallclock_sharded";
    rec.name = name;
    rec.add_metric("connections", connections);
    rec.add_metric("threads", threads);
    rec.add_metric("writes_per_1024", writes);
    rec.add_metric("ns_per_op", ns);
    if (skew > 0.0) rec.add_metric("occ_skew", skew);
    writer.add(std::move(rec));
  };

  // --- sharded: one fleet per thread count (shards == threads) ---------
  for (const int threads : thread_counts) {
    core::DemuxConfig inner = *core::parse_demux_spec("flat16");
    // Keep total slot budget constant across shard counts: the fleet as a
    // whole always provisions 2x the population.
    inner.flat_capacity = std::max<std::size_t>(
        1024, (2u * connections) / static_cast<std::uint32_t>(threads));
    core::ShardedDemuxer d(core::ShardedDemuxer::Options{
        static_cast<std::uint32_t>(threads), inner});
    for (const net::FlowKey& k : keys) d.insert(k);
    std::vector<std::vector<net::FlowKey>> partition(
        static_cast<std::size_t>(threads));
    for (const net::FlowKey& k : keys) {
      partition[d.home_shard(k)].push_back(k);
    }
    const std::uint64_t per_thread =
        std::max<std::uint64_t>(total_ops / threads, 1024);
    for (const std::uint32_t writes : {0u, 64u}) {
      const double ns = threaded_ns_per_op(
          threads, per_thread, reps, sharded_body(d, partition, writes));
      record("sharded:" + std::to_string(threads) + ":flat16", threads,
             writes, ns, occupancy_skew(d));
    }
  }

  // --- shared-structure baselines --------------------------------------
  const std::uint32_t chains = opts.smoke ? 4099u : 32771u;
  {
    auto d = std::make_unique<core::GloballyLockedDemuxer>(
        core::make_demuxer(*core::parse_demux_spec(
            "flat16:" + std::to_string(2u * connections))));
    for (const net::FlowKey& k : keys) d->insert(k);
    for (const int threads : thread_counts) {
      const std::uint64_t per_thread =
          std::max<std::uint64_t>(total_ops / threads, 1024);
      for (const std::uint32_t writes : {0u, 64u}) {
        const double ns = threaded_ns_per_op(
            threads, per_thread, reps, shared_body(*d, keys, writes));
        record("global_lock/flat16", threads, writes, ns, 0.0);
      }
    }
  }
  {
    core::ConcurrentSequentDemuxer d(core::ConcurrentSequentDemuxer::Options{
        chains, net::HasherKind::kCrc32, true});
    for (const net::FlowKey& k : keys) d.insert(k);
    for (const int threads : thread_counts) {
      const std::uint64_t per_thread =
          std::max<std::uint64_t>(total_ops / threads, 1024);
      for (const std::uint32_t writes : {0u, 64u}) {
        const double ns = threaded_ns_per_op(
            threads, per_thread, reps, shared_body(d, keys, writes));
        record("striped/sequent:" + std::to_string(chains), threads, writes,
               ns, 0.0);
      }
    }
  }
  {
    core::RcuSequentDemuxer d(core::RcuSequentDemuxer::Options{
        chains, net::HasherKind::kCrc32, true});
    for (const net::FlowKey& k : keys) d.insert(k);
    for (const int threads : thread_counts) {
      const std::uint64_t per_thread =
          std::max<std::uint64_t>(total_ops / threads, 1024);
      for (const std::uint32_t writes : {0u, 64u}) {
        const double ns = threaded_ns_per_op(
            threads, per_thread, reps, shared_body(d, keys, writes));
        record("rcu/sequent:" + std::to_string(chains), threads, writes, ns,
               0.0);
      }
    }
  }

  // --- NIC mis-steer telemetry: churn replay with a damaged table ------
  {
    core::DemuxConfig inner = *core::parse_demux_spec("flat16");
    inner.flat_capacity = std::max<std::size_t>(1024, connections / 2);
    core::ShardedDemuxer d(core::ShardedDemuxer::Options{4, inner});
    sim::NicDispatch nic(d);
    const auto& host = d.indirection();
    for (std::uint32_t i = 0; i < host.entries() / 4; ++i) {
      nic.set_nic_entry(i, (host.entry(i) + 1) % d.shard_count());
    }
    sim::workloads::ChurnWorkloadParams cp;
    cp.users = opts.smoke ? 2'000 : 200'000;
    cp.duration = opts.smoke ? 10.0 : 30.0;
    const auto churn = sim::workloads::generate_churn_workload(cp);
    const sim::NicDispatch::Result r = nic.run(churn.workload);
    std::printf(
        "nic/churn users=%u: frames=%llu missteer_rate=%.4f handoff_depth=%llu "
        "skew=%.3f lost=%llu dup=%llu\n",
        cp.users, static_cast<unsigned long long>(r.frames),
        r.missteer_rate(),
        static_cast<unsigned long long>(r.max_handoff_depth),
        r.peak_occ_skew, static_cast<unsigned long long>(r.lost),
        static_cast<unsigned long long>(r.duplicate_inserts));
    report::BenchRecord rec;
    rec.bench = "wallclock_sharded";
    rec.name = "nic/churn";
    rec.add_metric("users", cp.users);
    rec.add_metric("frames", static_cast<double>(r.frames));
    rec.add_metric("missteer_rate", r.missteer_rate());
    rec.add_metric("handoffs", static_cast<double>(r.handoffs));
    rec.add_metric("max_handoff_depth",
                   static_cast<double>(r.max_handoff_depth));
    rec.add_metric("handoff_drops", static_cast<double>(r.handoff_drops));
    rec.add_metric("peak_occ_skew", r.peak_occ_skew);
    rec.add_metric("lost", static_cast<double>(r.lost));
    rec.add_metric("duplicate_inserts",
                   static_cast<double>(r.duplicate_inserts));
    rec.add_metric("dirty_closes", static_cast<double>(r.dirty_closes));
    writer.add(std::move(rec));
  }

  bench::finish_json(writer, opts);
  return 0;
}
