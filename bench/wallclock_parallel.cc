// Multiprocessor scaling: global lock vs per-chain lock striping vs
// RCU-style lock-free reads, across 1-8 threads with a read/write-mix
// knob, on a hand-rolled thread harness (spin-barrier start, aggregate
// wall time, median of reps).
//
// The paper grew out of Sequent's parallel TCP [Dov90]: on an SMP, hash
// chains partition the lock as well as the search. Lock striping removes
// chain-to-chain contention but still pays an atomic acquire/release per
// lookup and serializes lookups that collide on a chain; the RCU variant
// (core/rcu_demuxer.h) removes read-side locks entirely, which is the
// right trade for demux traffic (~100% reads under OLTP). The flat table
// is single-writer by design, so it appears here under the global lock —
// the cheapest probe does not excuse a serialized structure.
//
// Mix cases run `writes` erase+reinsert pairs per 1024 operations
// (0 = read-only, 64 = 6.25% connection churn), exercising the RCU
// grace-period machinery while readers run. On a single-core host threads
// time-slice: expect the lock-free read path to show up as a
// constant-factor win rather than a scaling win.
//
//   wallclock_parallel [--smoke] [--json <path>]
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/bsd_list.h"
#include "core/concurrent_demuxer.h"
#include "core/flat_demuxer.h"
#include "core/rcu_demuxer.h"
#include "core/sequent_hash.h"
#include "sim/address_space.h"

namespace {

using namespace tcpdemux;

constexpr std::uint32_t kConnections = 2000;
constexpr std::size_t kBurst = 32;

const std::vector<net::FlowKey>& shared_keys() {
  static const std::vector<net::FlowKey> keys = [] {
    sim::AddressSpaceParams ap;
    ap.clients = kConnections;
    return sim::make_client_keys(ap);
  }();
  return keys;
}

// Per-thread deterministic key sequence.
std::uint32_t next_state(std::uint32_t& state) {
  state = state * 1664525u + 1013904223u;
  return state;
}

// Runs `body(thread_index)` on `nthreads` threads, `ops_per_thread` ops
// each, released together by a spin barrier; returns aggregate wall ns/op
// (release to last finisher). Median over `reps`.
double threaded_ns_per_op(
    int nthreads, std::uint64_t ops_per_thread, int reps,
    const std::function<void(int, std::uint64_t)>& body) {
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1, std::memory_order_acq_rel);
        while (!go.load(std::memory_order_acquire)) {
        }
        body(t, ops_per_thread);
      });
    }
    while (ready.load(std::memory_order_acquire) != nthreads) {
    }
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    samples.push_back(seconds * 1e9 /
                      (static_cast<double>(ops_per_thread) * nthreads));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// One mixed-workload body over any demuxer-like structure: lookups with an
// occasional erase+reinsert, `writes_per_1024` of every 1024 ops.
template <typename D>
std::function<void(int, std::uint64_t)> mix_body(D& d,
                                                 std::uint32_t writes_per_1024) {
  const auto& keys = shared_keys();
  return [&d, &keys, writes_per_1024](int thread_index, std::uint64_t ops) {
    std::uint32_t prng =
        static_cast<std::uint32_t>(thread_index + 1) * 2654435761u;
    for (std::uint64_t op = 0; op < ops; ++op) {
      const std::uint32_t s = next_state(prng);
      const net::FlowKey& k = keys[s % kConnections];
      if ((s >> 21) % 1024 < writes_per_1024) {
        d.erase(k);  // churn one connection; population stays ~constant
        d.insert(k);
      } else {
        bench::do_not_optimize(d.lookup(k).pcb);
      }
    }
  };
}

template <typename D>
void populate(D& d) {
  for (const auto& k : shared_keys()) d.insert(k);
}

struct Case {
  std::string name;
  std::function<std::function<void(int, std::uint64_t)>(std::uint32_t)> make;
  // Owner keeps the structure alive across the run.
  std::shared_ptr<void> owner;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  report::BenchJsonWriter writer;

  const std::vector<int> thread_counts = opts.smoke
                                             ? std::vector<int>{1, 2}
                                             : std::vector<int>{1, 2, 4, 8};
  const std::uint64_t total_ops = opts.smoke ? 50'000 : 2'000'000;
  const int reps = opts.smoke ? 1 : 3;

  std::vector<Case> cases;
  {
    auto d = std::make_shared<core::GloballyLockedDemuxer>(
        std::make_unique<core::SequentDemuxer>(core::SequentDemuxer::Options{
            19, net::HasherKind::kCrc32, true}));
    populate(*d);
    cases.push_back({"global_lock/sequent:19",
                     [d](std::uint32_t w) { return mix_body(*d, w); }, d});
  }
  {
    auto d = std::make_shared<core::GloballyLockedDemuxer>(
        std::make_unique<core::FlatDemuxer>(
            core::FlatDemuxer::Options{4096, net::HasherKind::kCrc32}));
    populate(*d);
    cases.push_back({"global_lock/flat:4096",
                     [d](std::uint32_t w) { return mix_body(*d, w); }, d});
  }
  {
    auto d = std::make_shared<core::GloballyLockedDemuxer>(
        std::make_unique<core::BsdListDemuxer>());
    populate(*d);
    cases.push_back({"global_lock/bsd",
                     [d](std::uint32_t w) { return mix_body(*d, w); }, d});
  }
  for (const std::uint32_t chains : {19u, 101u}) {
    auto d = std::make_shared<core::ConcurrentSequentDemuxer>(
        core::ConcurrentSequentDemuxer::Options{chains,
                                                net::HasherKind::kCrc32, true});
    populate(*d);
    cases.push_back({"striped/sequent:" + std::to_string(chains),
                     [d](std::uint32_t w) { return mix_body(*d, w); }, d});
  }
  for (const std::uint32_t chains : {19u, 101u}) {
    auto d = std::make_shared<core::RcuSequentDemuxer>(
        core::RcuSequentDemuxer::Options{chains, net::HasherKind::kCrc32,
                                         true});
    populate(*d);
    cases.push_back({"rcu/sequent:" + std::to_string(chains),
                     [d](std::uint32_t w) { return mix_body(*d, w); }, d});
  }
  {
    // Demultiplexing a NIC-style burst under one epoch guard: the
    // per-lookup epoch cost is amortized kBurst ways and target lines are
    // prefetched. Read-only by construction.
    auto d = std::make_shared<core::RcuSequentDemuxer>(
        core::RcuSequentDemuxer::Options{19, net::HasherKind::kCrc32, true});
    populate(*d);
    cases.push_back(
        {"rcu_batch/sequent:19",
         [d](std::uint32_t) -> std::function<void(int, std::uint64_t)> {
           const auto& keys = shared_keys();
           return [d, &keys](int thread_index, std::uint64_t ops) {
             std::uint32_t prng =
                 static_cast<std::uint32_t>(thread_index + 1) * 2654435761u;
             std::array<net::FlowKey, kBurst> burst;
             std::array<core::LookupResult, kBurst> results;
             for (std::uint64_t op = 0; op < ops; op += kBurst) {
               for (auto& k : burst) k = keys[next_state(prng) % kConnections];
               d->lookup_batch(burst, results);
               bench::do_not_optimize(results[0].pcb);
             }
           };
         },
         d});
  }

  std::printf("%-26s %8s %7s %12s\n", "structure", "threads", "w/1024",
              "ns/op(agg)");
  const auto run_case = [&](const Case& c, int threads,
                            std::uint32_t writes_per_1024) {
    const std::uint64_t per_thread =
        std::max<std::uint64_t>(total_ops / threads, kBurst);
    const double ns = threaded_ns_per_op(threads, per_thread, reps,
                                         c.make(writes_per_1024));
    std::printf("%-26s %8d %7u %12.1f\n", c.name.c_str(), threads,
                writes_per_1024, ns);
    report::BenchRecord rec;
    rec.bench = "wallclock_parallel";
    rec.name = c.name;
    rec.add_metric("threads", threads);
    rec.add_metric("writes_per_1024", writes_per_1024);
    rec.add_metric("ns_per_op", ns);
    writer.add(std::move(rec));
  };

  // Read-only scaling sweep for every structure...
  for (const Case& c : cases) {
    for (const int threads : thread_counts) run_case(c, threads, 0);
  }
  // ...then the churn mix at the top thread count for the contended trio
  // (bsd/flat under one lock have no special write path to compare).
  const int top = thread_counts.back();
  for (const Case& c : cases) {
    if (c.name.rfind("global_lock/sequent", 0) == 0 ||
        c.name.rfind("striped/sequent:19", 0) == 0 ||
        c.name.rfind("rcu/sequent:19", 0) == 0) {
      run_case(c, top, 64);
    }
  }

  bench::finish_json(writer, opts);
  return 0;
}
