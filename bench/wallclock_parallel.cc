// Multiprocessor scaling (google-benchmark ->Threads): per-chain lock
// striping vs one global lock.
//
// The paper grew out of Sequent's parallel TCP [Dov90]: on an SMP, hash
// chains partition the lock as well as the search. On a multi-core host,
// expect the striped demuxer's per-lookup time to stay roughly flat as
// threads multiply while the globally locked variants inflate with
// contention; on a single-core host (threads merely time-slice) the
// numbers stay flat for all variants and only the BSD-vs-hashed scan-cost
// gap shows.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/bsd_list.h"
#include "core/concurrent_demuxer.h"
#include "core/sequent_hash.h"
#include "sim/address_space.h"

namespace {

using namespace tcpdemux;

constexpr std::uint32_t kConnections = 2000;

std::vector<net::FlowKey> shared_keys() {
  sim::AddressSpaceParams ap;
  ap.clients = kConnections;
  return sim::make_client_keys(ap);
}

std::unique_ptr<core::ConcurrentSequentDemuxer> make_striped(
    std::uint32_t chains) {
  auto d = std::make_unique<core::ConcurrentSequentDemuxer>(
      core::ConcurrentSequentDemuxer::Options{chains,
                                              net::HasherKind::kCrc32, true});
  for (const auto& k : shared_keys()) d->insert(k);
  return d;
}

core::ConcurrentSequentDemuxer& striped_instance(std::uint32_t chains) {
  static const auto d19 = make_striped(19);
  static const auto d101 = make_striped(101);
  return chains == 19 ? *d19 : *d101;
}

std::unique_ptr<core::GloballyLockedDemuxer> make_locked(
    std::unique_ptr<core::Demuxer> inner) {
  auto locked =
      std::make_unique<core::GloballyLockedDemuxer>(std::move(inner));
  for (const auto& k : shared_keys()) locked->insert(k);
  return locked;
}

core::GloballyLockedDemuxer& locked_bsd_instance() {
  static const auto d = make_locked(std::make_unique<core::BsdListDemuxer>());
  return *d;
}

core::GloballyLockedDemuxer& locked_sequent_instance() {
  static const auto d = make_locked(std::make_unique<core::SequentDemuxer>(
      core::SequentDemuxer::Options{19, net::HasherKind::kCrc32, true}));
  return *d;
}

// Per-thread deterministic key sequence.
std::uint32_t next_index(std::uint32_t& state) {
  state = state * 1664525u + 1013904223u;
  return state % kConnections;
}

void BM_StripedSequent19(benchmark::State& state) {
  auto& d = striped_instance(19);
  static const auto keys = shared_keys();
  std::uint32_t prng =
      static_cast<std::uint32_t>(state.thread_index() + 1) * 2654435761u;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.lookup(keys[next_index(prng)]).pcb);
  }
}

void BM_StripedSequent101(benchmark::State& state) {
  auto& d = striped_instance(101);
  static const auto keys = shared_keys();
  std::uint32_t prng =
      static_cast<std::uint32_t>(state.thread_index() + 1) * 2654435761u;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.lookup(keys[next_index(prng)]).pcb);
  }
}

void BM_GlobalLockSequent19(benchmark::State& state) {
  auto& d = locked_sequent_instance();
  static const auto keys = shared_keys();
  std::uint32_t prng =
      static_cast<std::uint32_t>(state.thread_index() + 1) * 2654435761u;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.lookup(keys[next_index(prng)]).pcb);
  }
}

void BM_GlobalLockBsd(benchmark::State& state) {
  auto& d = locked_bsd_instance();
  static const auto keys = shared_keys();
  std::uint32_t prng =
      static_cast<std::uint32_t>(state.thread_index() + 1) * 2654435761u;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.lookup(keys[next_index(prng)]).pcb);
  }
}

}  // namespace

BENCHMARK(BM_StripedSequent19)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_StripedSequent101)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_GlobalLockSequent19)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_GlobalLockBsd)->Threads(1)->Threads(4)->UseRealTime();

BENCHMARK_MAIN();
