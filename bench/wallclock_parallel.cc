// Multiprocessor scaling (google-benchmark ->Threads): global lock vs
// per-chain lock striping vs RCU-style lock-free reads, across 1-16
// threads with a read/write-mix knob.
//
// The paper grew out of Sequent's parallel TCP [Dov90]: on an SMP, hash
// chains partition the lock as well as the search. Lock striping removes
// chain-to-chain contention but still pays an atomic acquire/release per
// lookup and serializes lookups that collide on a chain; the RCU variant
// (core/rcu_demuxer.h) removes read-side locks entirely, which is the
// right trade for demux traffic (~100% reads under OLTP).
//
// Benchmarks named *Mix take an argument: writes per 1024 operations
// (0 = read-only, 64 = 6.25% connection churn). A write erases and
// reinserts one connection, exercising the RCU grace-period machinery
// while readers run. Read-only variants run first so their populations
// are undisturbed. On a single-core host threads time-slice: expect the
// lock-free read path to show up as a constant-factor win rather than a
// scaling win.
#include <benchmark/benchmark.h>

#include <array>
#include <memory>
#include <vector>

#include "core/bsd_list.h"
#include "core/concurrent_demuxer.h"
#include "core/rcu_demuxer.h"
#include "core/sequent_hash.h"
#include "sim/address_space.h"

namespace {

using namespace tcpdemux;

constexpr std::uint32_t kConnections = 2000;
constexpr std::size_t kBurst = 32;

const std::vector<net::FlowKey>& shared_keys() {
  static const std::vector<net::FlowKey> keys = [] {
    sim::AddressSpaceParams ap;
    ap.clients = kConnections;
    return sim::make_client_keys(ap);
  }();
  return keys;
}

template <typename D>
std::unique_ptr<D> make_populated(std::uint32_t chains) {
  auto d = std::make_unique<D>(
      typename D::Options{chains, net::HasherKind::kCrc32, true});
  for (const auto& k : shared_keys()) d->insert(k);
  return d;
}

core::ConcurrentSequentDemuxer& striped_instance(std::uint32_t chains) {
  static const auto d19 =
      make_populated<core::ConcurrentSequentDemuxer>(19);
  static const auto d101 =
      make_populated<core::ConcurrentSequentDemuxer>(101);
  return chains == 19 ? *d19 : *d101;
}

core::RcuSequentDemuxer& rcu_instance(std::uint32_t chains) {
  static const auto d19 = make_populated<core::RcuSequentDemuxer>(19);
  static const auto d101 = make_populated<core::RcuSequentDemuxer>(101);
  return chains == 19 ? *d19 : *d101;
}

core::GloballyLockedDemuxer& locked_bsd_instance() {
  static const auto d = [] {
    auto locked = std::make_unique<core::GloballyLockedDemuxer>(
        std::make_unique<core::BsdListDemuxer>());
    for (const auto& k : shared_keys()) locked->insert(k);
    return locked;
  }();
  return *d;
}

core::GloballyLockedDemuxer& locked_sequent_instance() {
  static const auto d = [] {
    auto locked = std::make_unique<core::GloballyLockedDemuxer>(
        std::make_unique<core::SequentDemuxer>(core::SequentDemuxer::Options{
            19, net::HasherKind::kCrc32, true}));
    for (const auto& k : shared_keys()) locked->insert(k);
    return locked;
  }();
  return *d;
}

// Per-thread deterministic key sequence.
std::uint32_t next_state(std::uint32_t& state) {
  state = state * 1664525u + 1013904223u;
  return state;
}

// One benchmark body for all three structures: lookups with an occasional
// erase+reinsert, `writes_per_1024` of every 1024 ops.
template <typename D>
void run_mix(D& d, benchmark::State& state) {
  const auto writes_per_1024 =
      static_cast<std::uint32_t>(state.range(0));
  const auto& keys = shared_keys();
  std::uint32_t prng =
      static_cast<std::uint32_t>(state.thread_index() + 1) * 2654435761u;
  for (auto _ : state) {
    const std::uint32_t s = next_state(prng);
    const net::FlowKey& k = keys[s % kConnections];
    if ((s >> 21) % 1024 < writes_per_1024) {
      d.erase(k);  // churn one connection; population stays ~constant
      d.insert(k);
    } else {
      benchmark::DoNotOptimize(d.lookup(k).pcb);
    }
  }
}

void BM_GlobalLockSequent19Mix(benchmark::State& state) {
  run_mix(locked_sequent_instance(), state);
}

void BM_StripedSequent19Mix(benchmark::State& state) {
  run_mix(striped_instance(19), state);
}

void BM_StripedSequent101Mix(benchmark::State& state) {
  run_mix(striped_instance(101), state);
}

void BM_RcuSequent19Mix(benchmark::State& state) {
  run_mix(rcu_instance(19), state);
}

void BM_RcuSequent101Mix(benchmark::State& state) {
  run_mix(rcu_instance(101), state);
}

void BM_GlobalLockBsd(benchmark::State& state) {
  const auto& keys = shared_keys();
  auto& d = locked_bsd_instance();
  std::uint32_t prng =
      static_cast<std::uint32_t>(state.thread_index() + 1) * 2654435761u;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        d.lookup(keys[next_state(prng) % kConnections]).pcb);
  }
}

// Demultiplexing a NIC-style burst under one epoch guard: the per-lookup
// epoch cost is amortized kBurst ways and bucket headers are prefetched.
void BM_RcuSequent19Batch(benchmark::State& state) {
  auto& d = rcu_instance(19);
  const auto& keys = shared_keys();
  std::uint32_t prng =
      static_cast<std::uint32_t>(state.thread_index() + 1) * 2654435761u;
  std::array<net::FlowKey, kBurst> burst;
  std::array<core::LookupResult, kBurst> results;
  for (auto _ : state) {
    for (auto& k : burst) k = keys[next_state(prng) % kConnections];
    d.lookup_batch(burst, results);
    benchmark::DoNotOptimize(results[0].pcb);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kBurst);
}

void apply_thread_counts(benchmark::internal::Benchmark* b) {
  b->Threads(1)->Threads(2)->Threads(4)->Threads(8)->Threads(16)
      ->UseRealTime();
}

}  // namespace

// Read-only first (Arg 0) so later churn never perturbs these numbers;
// then the mixed-workload knob at 6.25% writes.
BENCHMARK(BM_GlobalLockSequent19Mix)->ArgName("w1024")->Arg(0)
    ->Apply(apply_thread_counts);
BENCHMARK(BM_StripedSequent19Mix)->ArgName("w1024")->Arg(0)
    ->Apply(apply_thread_counts);
BENCHMARK(BM_StripedSequent101Mix)->ArgName("w1024")->Arg(0)
    ->Apply(apply_thread_counts);
BENCHMARK(BM_RcuSequent19Mix)->ArgName("w1024")->Arg(0)
    ->Apply(apply_thread_counts);
BENCHMARK(BM_RcuSequent101Mix)->ArgName("w1024")->Arg(0)
    ->Apply(apply_thread_counts);
BENCHMARK(BM_RcuSequent19Batch)->Threads(1)->Threads(8)->UseRealTime();
BENCHMARK(BM_GlobalLockBsd)->Threads(1)->Threads(4)->UseRealTime();

BENCHMARK(BM_GlobalLockSequent19Mix)->ArgName("w1024")->Arg(64)
    ->Threads(8)->UseRealTime();
BENCHMARK(BM_StripedSequent19Mix)->ArgName("w1024")->Arg(64)
    ->Threads(8)->UseRealTime();
BENCHMARK(BM_RcuSequent19Mix)->ArgName("w1024")->Arg(64)
    ->Threads(8)->UseRealTime();

BENCHMARK_MAIN();
