// Wall-clock lookup cost (google-benchmark): validates the paper's premise
// that PCBs-examined is a faithful surrogate for lookup time.
//
// Each benchmark pre-populates a demuxer with N PCBs and replays a
// TPC/A-distributed arrival sequence; the Counters report both ns/lookup
// (google-benchmark's own timing) and the mean PCBs examined, so their
// proportionality is visible directly in the output.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/demux_registry.h"
#include "sim/address_space.h"
#include "sim/tpca_workload.h"

namespace {

using namespace tcpdemux;

struct LookupFixture {
  std::unique_ptr<core::Demuxer> demuxer;
  std::vector<net::FlowKey> keys;
  std::vector<std::pair<std::uint32_t, core::SegmentKind>> sequence;

  LookupFixture(const std::string& spec, std::uint32_t users) {
    demuxer = core::make_demuxer(*core::parse_demux_spec(spec));
    sim::AddressSpaceParams ap;
    ap.clients = users;
    keys = sim::make_client_keys(ap);
    for (const auto& k : keys) demuxer->insert(k);

    sim::TpcaWorkloadParams tp;
    tp.users = users;
    tp.duration = 50.0;
    for (const auto& e : sim::generate_tpca_trace(tp).events) {
      if (e.kind == sim::TraceEventKind::kTransmit) continue;
      sequence.emplace_back(e.conn,
                            e.kind == sim::TraceEventKind::kArrivalData
                                ? core::SegmentKind::kData
                                : core::SegmentKind::kAck);
    }
  }
};

void run_lookup_bench(benchmark::State& state, const std::string& spec) {
  const auto users = static_cast<std::uint32_t>(state.range(0));
  LookupFixture fx(spec, users);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [conn, kind] = fx.sequence[i];
    const auto r = fx.demuxer->lookup(fx.keys[conn], kind);
    benchmark::DoNotOptimize(r.pcb);
    if (++i == fx.sequence.size()) i = 0;
  }
  state.counters["pcbs_examined"] = benchmark::Counter(
      fx.demuxer->stats().mean_examined());
  state.counters["hit_rate"] =
      benchmark::Counter(fx.demuxer->stats().hit_rate());
}

void BM_Bsd(benchmark::State& state) { run_lookup_bench(state, "bsd"); }
void BM_Mtf(benchmark::State& state) { run_lookup_bench(state, "mtf"); }
void BM_SrCache(benchmark::State& state) {
  run_lookup_bench(state, "srcache");
}
void BM_Sequent19(benchmark::State& state) {
  run_lookup_bench(state, "sequent:19:crc32");
}
void BM_Sequent101(benchmark::State& state) {
  run_lookup_bench(state, "sequent:101:crc32");
}
void BM_HashedMtf19(benchmark::State& state) {
  run_lookup_bench(state, "hashed_mtf:19:crc32");
}
void BM_ConnectionId(benchmark::State& state) {
  run_lookup_bench(state, "connection_id");
}

}  // namespace

BENCHMARK(BM_Bsd)->Arg(200)->Arg(2000)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_Mtf)->Arg(200)->Arg(2000)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_SrCache)->Arg(200)->Arg(2000)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_Sequent19)->Arg(200)->Arg(2000)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_Sequent101)->Arg(2000)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_HashedMtf19)->Arg(2000)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_ConnectionId)->Arg(2000)->Unit(benchmark::kNanosecond);

BENCHMARK_MAIN();
