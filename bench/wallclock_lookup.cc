// Wall-clock lookup cost: validates the paper's premise that PCBs-examined
// is a faithful surrogate for lookup time, now across three population
// sizes (2 k / 20 k / 200 k connections).
//
// Each case pre-populates a demuxer with N PCBs and replays a
// TPC/A-distributed arrival sequence through the shared calibrated timing
// loop (bench_util.h); the table reports ns/lookup next to the mean PCBs
// examined so their proportionality is visible directly in the output.
//
// The linear-scan algorithms (bsd, mtf, srcache) and the paper's fixed
// 19-chain configurations are capped at 20 k connections: their O(n)
// duplicate-check inserts make a 200 k population take minutes and the
// scan cost story is already unambiguous at 20 k. The scaled-chain
// sequent, connection_id, and the flat table run at every size.
//
//   wallclock_lookup [--smoke] [--json <path>] [--telemetry <path>]
//                    [--sizes <a,b,...>] [--miss-rate <f>]
//
// --sizes accepts k/m suffixes ("--sizes 2m" measures a two-million-PCB
// population); the arrival sequence and structure sizing scale with the
// requested population, so multi-million rows need no other flags.
//
// --miss-rate blends negative lookups (keys absent from the table) into
// the arrival stream at the given fraction — the axis where linear scans
// pay full population cost to answer "no connection" while the flat
// table's fingerprint tags answer almost for free.
//
// --telemetry additionally dumps each measured demuxer's telemetry
// registry (counters + examined-PCB histograms + occupancy) as a
// tcpdemux.telemetry.v1 JSON array, so a timing run doubles as a
// distribution capture. Histograms are enabled only on that flag; the
// timed path otherwise runs counters-only, exactly as shipped.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/cuckoo_demuxer.h"
#include "core/demux_registry.h"
#include "sim/address_space.h"
#include "sim/tpca_workload.h"

namespace {

using namespace tcpdemux;

struct LookupFixture {
  std::unique_ptr<core::Demuxer> demuxer;
  const std::vector<net::FlowKey>& keys;
  const std::vector<std::pair<std::uint32_t, core::SegmentKind>>& sequence;

  LookupFixture(
      const std::string& spec, const std::vector<net::FlowKey>& all_keys,
      const std::vector<std::pair<std::uint32_t, core::SegmentKind>>& seq)
      : keys(all_keys), sequence(seq) {
    demuxer = core::make_demuxer(*core::parse_demux_spec(spec));
    for (const auto& k : keys) demuxer->insert(k);
  }
};

// TPC/A arrival sequence sized to ~200 k events regardless of population:
// each user contributes ~0.2 arrivals/s, so scale the simulated duration
// inversely with the user count.
std::vector<std::pair<std::uint32_t, core::SegmentKind>> make_sequence(
    std::uint32_t users) {
  sim::TpcaWorkloadParams tp;
  tp.users = users;
  tp.warmup = 5.0;
  tp.duration = 1.0e6 / users;
  std::vector<std::pair<std::uint32_t, core::SegmentKind>> sequence;
  for (const auto& e : sim::generate_tpca_trace(tp).events) {
    if (e.kind == sim::TraceEventKind::kTransmit) continue;
    sequence.emplace_back(e.conn,
                          e.kind == sim::TraceEventKind::kArrivalData
                              ? core::SegmentKind::kData
                              : core::SegmentKind::kAck);
  }
  return sequence;
}

// Hash-structure sizing per population: a prime near users/8 for chained
// tables (mean chain ~8, the paper's ballpark), 2x users for the flat
// table (constructor rounds up to a power of two) and the id array.
std::uint32_t scaled_chains(std::uint32_t users) {
  if (users <= 2000) return 251;
  if (users <= 20000) return 2521;
  if (users <= 200000) return 25013;
  // Multi-million-PCB rows (--sizes 2m/10m): keep mean chain length ~8
  // rather than letting the 200 k tier degenerate to 80+ per chain.
  if (users <= 2000000) return 250007;
  return 1250003;
}

std::vector<std::string> specs_for(std::uint32_t users) {
  std::vector<std::string> specs;
  if (users <= 20000) {
    specs.insert(specs.end(), {"bsd", "mtf", "srcache", "sequent:19:crc32",
                               "hashed_mtf:19:crc32"});
  }
  const std::string chains = std::to_string(scaled_chains(users));
  const std::string doubled = std::to_string(2 * users);
  specs.push_back("sequent:" + chains + ":crc32");
  specs.push_back("connection_id:" + doubled);
  specs.push_back("flat:" + doubled + ":crc32");
  // Default xor_fold + the table's avalanche finalizer: shows how much of
  // flat's lookup cost is really the crc32 hash.
  specs.push_back("flat:" + doubled);
  // Hardware CRC32C on the same structure isolates the hash-instruction
  // gain from the probing-scheme gain...
  specs.push_back("flat:" + doubled + ":crc32c");
  // ...then SIMD group probing (flat16) and the Cuckoo++ table stack on
  // top. cuckoo's miss story needs --miss-rate to show; at 0 it documents
  // the bounded-hit cost instead.
  specs.push_back("flat16:" + doubled + ":crc32c");
  specs.push_back("flat16:" + doubled);
  specs.push_back("cuckoo:" + doubled + ":crc32c");
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  report::BenchJsonWriter writer;
  std::vector<report::TelemetryReport> telemetry;

  std::vector<std::uint32_t> sizes = {2000, 20000, 200000};
  if (opts.smoke) sizes = {2000};
  if (!opts.sizes.empty()) sizes = opts.sizes;

  std::printf("%-26s %10s %12s %14s %9s\n", "demuxer", "users", "ns/lookup",
              "pcbs_examined", "hit_rate");
  for (const std::uint32_t users : sizes) {
    sim::AddressSpaceParams ap;
    ap.clients = users;
    const auto keys = sim::make_client_keys(ap);
    const auto sequence = make_sequence(users);
    const auto absent = opts.miss_rate > 0.0
                            ? bench::make_absent_keys(keys, 1024)
                            : std::vector<net::FlowKey>{};

    for (const std::string& spec : specs_for(users)) {
      LookupFixture fx(spec, keys, sequence);
      if (!opts.telemetry_path.empty()) {
        fx.demuxer->enable_telemetry_histograms(true);
      }
      constexpr std::size_t kChunk = 256;
      std::size_t i = 0;
      std::size_t mi = 0;
      bench::MissSequencer misses(opts.miss_rate);
      const std::size_t n = fx.sequence.size();
      const bench::Timing t = bench::time_loop(
          kChunk,
          [&] {
            for (std::size_t j = 0; j < kChunk; ++j) {
              const auto& [conn, kind] = fx.sequence[i];
              const net::FlowKey& key =
                  misses.next_is_miss()
                      ? absent[mi++ & (absent.size() - 1)]
                      : fx.keys[conn];
              bench::do_not_optimize(fx.demuxer->lookup(key, kind).pcb);
              if (++i == n) i = 0;
            }
          },
          opts.timing());

      const double examined = fx.demuxer->stats().mean_examined();
      const double hit_rate = fx.demuxer->stats().hit_rate();
      std::printf("%-26s %10u %12.1f %14.2f %9.3f\n", spec.c_str(), users,
                  t.ns_per_op, examined, hit_rate);

      report::BenchRecord rec;
      rec.bench = "wallclock_lookup";
      rec.name = spec;
      rec.add_metric("users", users);
      rec.add_metric("ns_per_lookup", t.ns_per_op);
      rec.add_metric("pcbs_examined", examined);
      rec.add_metric("hit_rate", hit_rate);
      rec.add_metric("miss_rate", opts.miss_rate);
      // The cuckoo table's headline number on the miss axis: mean buckets
      // (~cache lines) touched per lookup. The Cuckoo++ presence filter
      // keeps this ~1 when almost every lookup is negative.
      if (const auto* cuckoo =
              dynamic_cast<const core::CuckooDemuxer*>(fx.demuxer.get())) {
        rec.add_metric("buckets_per_lookup",
                       static_cast<double>(cuckoo->buckets_probed()) /
                           static_cast<double>(fx.demuxer->stats().lookups));
      }
      writer.add(std::move(rec));

      if (!opts.telemetry_path.empty()) {
        auto trec = bench::telemetry_report_of("bench/wallclock_lookup",
                                               *fx.demuxer);
        trec.algorithm = spec + "@" + std::to_string(users);
        telemetry.push_back(std::move(trec));
      }
    }
  }

  bench::finish_json(writer, opts);
  bench::finish_telemetry(telemetry, opts);
  return 0;
}
