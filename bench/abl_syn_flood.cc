// Ablation: SYN floods and the listen path (the demultiplexing story four
// years after the paper).
//
// Half-open connections must live *somewhere*. If every SYN creates a full
// PCB in the demultiplexer's table, an attacker inflates exactly the
// structure the paper worked to keep cheap — and the BSD list dies first.
// The SYN cache (tcp/syn_cache.h) bounds the damage: embryos live in a
// fixed-budget side table and legitimate traffic's lookup cost is
// untouched.
//
// Method: one SocketTable per configuration receives 500 legitimate
// established connections' worth of query traffic interleaved with a
// 20,000-SYN flood from random spoofed sources, as real wire packets.
#include <iostream>
#include <vector>

#include "net/packet.h"
#include "report/table.h"
#include "sim/rng.h"
#include "tcp/socket_table.h"

namespace {

using namespace tcpdemux;

constexpr net::Ipv4Addr kServerAddr{10, 0, 0, 1};
constexpr std::uint16_t kPort = 1521;
constexpr std::uint32_t kLegit = 500;
constexpr std::uint32_t kFlood = 20000;

struct Outcome {
  std::string config;
  std::size_t pcb_table = 0;
  std::size_t embryonic = 0;
  double legit_cost = 0.0;
  double legit_cost_before = 0.0;
};

Outcome run(const std::string& spec, bool syn_cache) {
  tcp::SocketTable table(*core::parse_demux_spec(spec),
                         [](std::vector<std::uint8_t>, const core::Pcb&) {});
  if (syn_cache) table.enable_syn_cache();
  table.listen(kServerAddr, kPort);

  // Legitimate population: pre-established connections.
  std::vector<net::FlowKey> legit;
  for (std::uint32_t i = 0; i < kLegit; ++i) {
    const net::FlowKey key{kServerAddr, kPort,
                           net::Ipv4Addr(10, 1, static_cast<std::uint8_t>(i >> 8),
                                         static_cast<std::uint8_t>(i & 0xff)),
                           static_cast<std::uint16_t>(40000 + i)};
    core::Pcb* pcb = table.demuxer().insert(key);
    pcb->state = core::TcpState::kEstablished;
    legit.push_back(key);
  }

  const auto legit_query = [&](const net::FlowKey& key) {
    return net::PacketBuilder()
        .from({key.foreign_addr, key.foreign_port})
        .to({key.local_addr, key.local_port})
        .seq(1)
        .ack_seq(1)
        .flags(net::TcpFlag::kPsh)
        .payload_size(100)
        .build();
  };

  // Baseline legitimate cost before the flood.
  sim::Rng rng(5);
  table.demuxer().reset_stats();
  for (int i = 0; i < 2000; ++i) {
    table.deliver_wire(
        legit_query(legit[rng.uniform_index(legit.size())]));
  }
  Outcome out;
  out.legit_cost_before = table.demuxer().stats().mean_examined();

  // The flood: SYNs from random spoofed sources, interleaved 10:1 with
  // legitimate queries whose cost we measure afterwards.
  for (std::uint32_t i = 0; i < kFlood; ++i) {
    const auto src = net::Ipv4Addr(
        static_cast<std::uint32_t>(0xc0000000u + rng.uniform_index(1u << 24)));
    table.deliver_wire(
        net::PacketBuilder()
            .from({src, static_cast<std::uint16_t>(
                            1024 + rng.uniform_index(60000))})
            .to({kServerAddr, kPort})
            .seq(static_cast<std::uint32_t>(rng.uniform_index(1u << 31)))
            .flags(net::TcpFlag::kSyn)
            .build());
  }
  table.demuxer().reset_stats();
  for (int i = 0; i < 2000; ++i) {
    table.deliver_wire(
        legit_query(legit[rng.uniform_index(legit.size())]));
  }

  out.config = spec + (syn_cache ? " + syncache" : "");
  out.pcb_table = table.connection_count();
  out.embryonic = table.syn_cache() ? table.syn_cache()->size() : 0;
  out.legit_cost = table.demuxer().stats().mean_examined();
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: SYN flood vs the listen path ===\n"
            << "(500 legitimate connections, 20,000 spoofed SYNs)\n\n";

  report::Table table({"configuration", "PCB table", "embryonic",
                       "legit cost before", "legit cost after"});
  for (const char* spec : {"bsd", "sequent:19:crc32"}) {
    for (const bool syn_cache : {false, true}) {
      const Outcome o = run(spec, syn_cache);
      table.add_row({o.config, std::to_string(o.pcb_table),
                     std::to_string(o.embryonic),
                     report::fmt(o.legit_cost_before, 1),
                     report::fmt(o.legit_cost, 1)});
    }
  }
  table.print(std::cout);

  std::cout << "\ntakeaway: without the cache the flood multiplies the PCB "
               "population and every legitimate lookup pays (catastrophic "
               "for the BSD list); with it the table and the cost don't "
               "move\n";
  return 0;
}
