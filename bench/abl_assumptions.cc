// Ablation: the paper's modelling assumptions (§2-§3).
//
// The analysis assumes (a) users may enter transactions while a response
// is outstanding (open loop; real TPC/A users are closed-loop) and (b) an
// untruncated negative-exponential think time (real TPC/A truncates at
// >= 10x the mean). The paper argues both effects are negligible; this
// bench quantifies them.
#include <iostream>

#include "analytic/bsd_model.h"
#include "analytic/sequent_model.h"
#include "bench_util.h"
#include "report/table.h"

int main() {
  using namespace tcpdemux;

  std::cout << "=== Ablation: analysis assumptions vs real TPC/A rules "
               "(N = 2000, R = 0.2 s) ===\n\n";

  const struct {
    const char* name;
    bool open_loop;
    bool truncate;
  } kVariants[] = {
      {"analysis model (open loop, untruncated)", true, false},
      {"open loop, truncated think", true, true},
      {"closed loop, untruncated", false, false},
      {"real TPC/A (closed loop, truncated)", false, true},
  };

  report::Table table({"variant", "BSD sim", "Sequent(19) sim",
                       "txn rate (/s)"});
  for (const auto& v : kVariants) {
    bench::TpcaRun run;
    run.users = 2000;
    run.duration = 150.0;
    run.open_loop = v.open_loop;
    run.truncate_think = v.truncate;
    const auto bsd = bench::run_tpca(run, bench::config_of("bsd"));
    const auto seq =
        bench::run_tpca(run, bench::config_of("sequent:19:crc32"));
    const double rate =
        static_cast<double>(bsd.lookups) / 2.0 / run.duration;
    table.add_row({v.name, report::fmt(bsd.overall.mean(), 1),
                   report::fmt(seq.overall.mean(), 2),
                   report::fmt(rate, 1)});
  }
  table.print(std::cout);

  std::cout << "\nmodel references: BSD "
            << report::fmt(analytic::bsd_cost(2000), 1) << ", Sequent(19) "
            << report::fmt(analytic::sequent_cost_exact(2000, 19, 0.1, 0.2),
                           1)
            << "\npaper's claim: <10% of users wait at any instant and "
               "truncation drops <0.4% of think time, so the shortcuts "
               "are safe -- the rows above differ by only a few percent\n";
  return 0;
}
