// Scalar vs batched lookup: does the lookup_batch() pipeline (hash the
// burst, prefetch every target line, then probe) actually buy wall-clock
// time over N back-to-back scalar lookups?
//
// NIC receive bursts have little temporal locality, so the key stream is
// uniform-random over the population — the regime where every probe is a
// cache miss and software pipelining has the most to hide. Covered
// structures: the flat table (SoA + fingerprint tags, the tentpole), the
// chained sequent table, the RCU demuxer (one epoch guard per burst), and
// a chained table with no override (hashed_mtf) as the default-loop
// baseline.
//
//   wallclock_batch [--smoke] [--json <path>] [--miss-rate <f>]
//
// --miss-rate blends negative lookups into the burst stream: the batch
// path's prefetch pipeline hides miss probes exactly as well as hit
// probes, so the scalar/batch gap should widen with the miss fraction.
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/demux_registry.h"
#include "sim/address_space.h"

namespace {

using namespace tcpdemux;

constexpr std::size_t kBurst = 32;

std::uint32_t scaled_chains(std::uint32_t users) {
  if (users <= 2000) return 251;
  if (users <= 20000) return 2521;
  return 25013;
}

std::vector<std::string> specs_for(std::uint32_t users) {
  const std::string chains = std::to_string(scaled_chains(users));
  const std::string doubled = std::to_string(2 * users);
  return {"flat:" + doubled + ":crc32", "flat:" + doubled,
          "flat16:" + doubled + ":crc32c", "flat16:" + doubled,
          "cuckoo:" + doubled + ":crc32c",
          "sequent:" + chains + ":crc32", "rcu:" + chains + ":crc32",
          "hashed_mtf:" + chains + ":crc32"};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  report::BenchJsonWriter writer;

  std::vector<std::uint32_t> sizes = {2000, 20000, 200000};
  if (opts.smoke) sizes = {2000};

  std::printf("%-26s %10s %12s %12s %9s\n", "demuxer", "users", "scalar_ns",
              "batch_ns", "speedup");
  for (const std::uint32_t users : sizes) {
    sim::AddressSpaceParams ap;
    ap.clients = users;
    const auto keys = sim::make_client_keys(ap);

    // One shared uniform-random stream per size so every structure (and
    // both drive modes) sees the identical arrival order. Power-of-two
    // length for cheap wraparound in multiples of kBurst. Misses are baked
    // into the stream up front so the timed loops stay branch-free.
    constexpr std::size_t kStreamLen = 1 << 16;
    std::vector<net::FlowKey> stream(kStreamLen);
    const auto absent = opts.miss_rate > 0.0
                            ? bench::make_absent_keys(keys, 1024)
                            : std::vector<net::FlowKey>{};
    bench::MissSequencer misses(opts.miss_rate);
    std::size_t next_absent = 0;
    std::mt19937 rng(1234);
    std::uniform_int_distribution<std::size_t> pick(0, keys.size() - 1);
    for (auto& k : stream) {
      k = misses.next_is_miss() ? absent[next_absent++ & (absent.size() - 1)]
                                : keys[pick(rng)];
    }

    for (const std::string& spec : specs_for(users)) {
      const auto demuxer = core::make_demuxer(*core::parse_demux_spec(spec));
      for (const auto& k : keys) demuxer->insert(k);

      std::size_t i = 0;
      const bench::Timing scalar = bench::time_loop(
          kBurst,
          [&] {
            for (std::size_t j = 0; j < kBurst; ++j) {
              bench::do_not_optimize(demuxer->lookup(stream[i + j]).pcb);
            }
            i = (i + kBurst) & (kStreamLen - 1);
          },
          opts.timing());

      std::vector<core::LookupResult> results(kBurst);
      i = 0;
      const bench::Timing batch = bench::time_loop(
          kBurst,
          [&] {
            demuxer->lookup_batch({stream.data() + i, kBurst}, results);
            bench::do_not_optimize(results[0].pcb);
            i = (i + kBurst) & (kStreamLen - 1);
          },
          opts.timing());

      const double speedup = scalar.ns_per_op / batch.ns_per_op;
      std::printf("%-26s %10u %12.1f %12.1f %8.2fx\n", spec.c_str(), users,
                  scalar.ns_per_op, batch.ns_per_op, speedup);

      report::BenchRecord rec;
      rec.bench = "wallclock_batch";
      rec.name = spec;
      rec.add_metric("users", users);
      rec.add_metric("burst", kBurst);
      rec.add_metric("miss_rate", opts.miss_rate);
      rec.add_metric("scalar_ns_per_lookup", scalar.ns_per_op);
      rec.add_metric("batch_ns_per_lookup", batch.ns_per_op);
      rec.add_metric("speedup", speedup);
      writer.add(std::move(rec));
    }
  }

  bench::finish_json(writer, opts);
  return 0;
}
