// Table T3 (paper §3.3): Partridge & Pink's last-sent/last-received cache.
//
// Paper values for N = 2000, R = 0.2 s: overall 667 / 993 / 1002 PCBs for
// round-trip delays of 1 / 10 / 100 ms, with N1, N2, Na the per-case
// components of Equations 11, 14, and 16, combined by Equation 7 as
// (N1 + N2 + Na) / 2. Also demonstrated: the §3.3.4 claim that the result
// is extremely insensitive to R.
#include <iostream>

#include "analytic/srcache_model.h"
#include "bench_util.h"
#include "report/table.h"

int main() {
  using namespace tcpdemux;
  constexpr double kUsers = 2000;
  constexpr double kRate = 0.1;
  constexpr double kResponse = 0.2;

  std::cout << "=== T3 (sec 3.3): send/receive cache, N = 2000, R = 0.2 s "
               "===\n\n";

  report::Table table({"D", "N1+N2 (txn)", "Na (ack)", "overall model",
                       "overall sim", "paper"});
  const double paper[] = {667, 993, 1002};
  int i = 0;
  for (const double d : {0.001, 0.010, 0.100}) {
    const double n12 = analytic::srcache_n1(kUsers, kRate, kResponse, d) +
                       analytic::srcache_n2(kUsers, kRate, kResponse, d);
    const double na = analytic::srcache_na(kUsers, kRate, d);
    bench::TpcaRun run;
    run.users = 2000;
    run.response_time = kResponse;
    run.rtt = d;
    run.duration = 120.0;
    const auto r = bench::run_tpca(run, bench::config_of("srcache"));
    table.add_row({report::fmt(d * 1000.0, 0) + " ms", report::fmt(n12, 1),
                   report::fmt(na, 1), report::fmt(0.5 * (n12 + na), 1),
                   report::fmt(r.overall.mean(), 1),
                   report::fmt(paper[i++], 0)});
  }
  table.print(std::cout);

  std::cout << "\ninsensitivity to R (model, D = 1 ms):\n";
  report::Table rt({"R (s)", "overall model"});
  const analytic::SrCacheModel model;
  for (const double resp : {0.1, 0.2, 0.5, 1.0, 2.0}) {
    rt.add_row({report::fmt(resp, 1),
                report::fmt(model
                                .search_cost(analytic::TpcaParams{
                                    kUsers, kRate, resp, 0.001})
                                .overall,
                            1)});
  }
  rt.print(std::cout);
  std::cout << "\npaper: 'extremely insensitive to the value of R for large "
               "values of N'\n";
  return 0;
}
