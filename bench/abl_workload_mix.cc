// Ablation: every algorithm against every traffic class.
//
// The paper's framing (§1): BSD's cache was built for packet trains; OLTP
// has none; polling is MTF's nemesis. This matrix shows each algorithm's
// mean examined PCBs and cache hit rate per workload, plus the mixed
// OLTP+bulk case a real 1992 server actually saw.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "report/table.h"
#include "sim/bulk_workload.h"
#include "sim/polling_workload.h"
#include "sim/replay.h"
#include "sim/tpca_workload.h"

int main() {
  using namespace tcpdemux;

  sim::TpcaWorkloadParams tp;
  tp.users = 1000;
  tp.duration = 150.0;
  sim::Trace tpca = generate_tpca_trace(tp);

  sim::BulkWorkloadParams bp;
  bp.connections = 8;
  bp.duration = 4.0;
  bp.train_gap_mean = 0.02;
  sim::Trace bulk = generate_bulk_trace(bp);

  sim::PollingWorkloadParams pp;
  pp.terminals = 1000;
  pp.period = 10.0;
  pp.duration = 40.0;
  sim::Trace polling = generate_polling_trace(pp);

  sim::Trace mixed = tpca;  // copy
  sim::BulkWorkloadParams mp;
  mp.connections = 4;
  mp.duration = 150.0;
  mp.train_gap_mean = 0.1;
  mixed.merge(generate_bulk_trace(mp));

  const struct {
    const char* name;
    const sim::Trace* trace;
  } kWorkloads[] = {{"TPC/A 1000u", &tpca},
                    {"bulk x8", &bulk},
                    {"polling 1000t", &polling},
                    {"mixed OLTP+bulk", &mixed}};
  const std::vector<std::string> kAlgos = {
      "bsd", "mtf", "srcache", "sequent:19:crc32", "sequent:101:crc32",
      "hashed_mtf:19:crc32", "connection_id"};

  std::cout << "=== Ablation: algorithm x workload matrix ===\n\n";
  std::cout << "mean PCBs examined per received packet (cache hit rate)\n\n";

  std::vector<std::string> headers = {"algorithm"};
  for (const auto& w : kWorkloads) headers.emplace_back(w.name);
  report::Table table(headers);
  for (const std::string& spec : kAlgos) {
    std::vector<std::string> row = {spec};
    for (const auto& w : kWorkloads) {
      const auto r = bench::replay(*w.trace, bench::config_of(spec));
      row.push_back(report::fmt(r.overall.mean(), 1) + " (" +
                    report::fmt(100.0 * r.hit_rate(), 0) + "%)");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nexpected shape: BSD wins only on bulk; MTF collapses on "
               "polling; Sequent is near-flat everywhere; connection-ID is "
               "the unreachable lower bound the paper argues is not worth "
               "protocol surgery\n";
  return 0;
}
