// Ablation: the per-chain one-entry cache (paper §3.4's closing pitfall).
//
// "The hit ratio is only part of the story; this is just one example where
// the miss penalty dominates the hit ratio." This bench measures exactly
// what the per-chain cache buys, per workload and chain count: with short
// chains the cache's absolute saving is small even when it hits; with one
// chain (BSD-shaped) the cache is worthless for OLTP and dominant for
// bulk.
#include <iostream>
#include <string>

#include "bench_util.h"
#include "report/table.h"
#include "sim/bulk_workload.h"
#include "sim/polling_workload.h"
#include "sim/replay.h"
#include "sim/tpca_workload.h"

namespace {

using namespace tcpdemux;

sim::Trace tpca_trace() {
  sim::TpcaWorkloadParams p;
  p.users = 2000;
  p.duration = 150.0;
  return generate_tpca_trace(p);
}

sim::Trace bulk_trace() {
  sim::BulkWorkloadParams p;
  p.connections = 16;
  p.duration = 4.0;
  p.train_gap_mean = 0.02;
  return generate_bulk_trace(p);
}

sim::Trace polling_trace() {
  sim::PollingWorkloadParams p;
  p.terminals = 2000;
  p.period = 10.0;
  p.duration = 30.0;
  return generate_polling_trace(p);
}

}  // namespace

int main() {
  std::cout << "=== Ablation: per-chain one-entry cache on/off ===\n\n";

  const struct {
    const char* name;
    sim::Trace trace;
  } kWorkloads[] = {
      {"TPC/A (2000 users)", tpca_trace()},
      {"bulk transfer (16 conns)", bulk_trace()},
      {"polling (2000 terminals)", polling_trace()},
  };

  for (const auto& [name, trace] : kWorkloads) {
    std::cout << "--- workload: " << name << " ---\n";
    report::Table table({"chains", "with cache", "hit rate", "without cache",
                         "cache saves"});
    for (const std::uint32_t h : {1u, 19u, 101u}) {
      const auto with = bench::replay(
          trace,
          bench::config_of("sequent:" + std::to_string(h) + ":crc32"));
      const auto without = bench::replay(
          trace, bench::config_of("sequent:" + std::to_string(h) +
                                  ":crc32:nocache"));
      const double saved = without.overall.mean() - with.overall.mean();
      table.add_row({std::to_string(h), report::fmt(with.overall.mean(), 2),
                     report::fmt(100.0 * with.hit_rate(), 1) + "%",
                     report::fmt(without.overall.mean(), 2),
                     report::fmt(saved, 2) + " PCBs"});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "takeaway: for OLTP the hit ratio is tiny and the saving "
               "per hit shrinks as chains multiply -- hashing, not "
               "caching, does the work; the cache still pays for packet "
               "trains\n";
  return 0;
}
