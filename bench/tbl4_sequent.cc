// Table T4 (paper §3.4): the Sequent hashed-chain algorithm.
//
// Paper values for N = 2000, R = 0.2 s:
//   H = 19:  Eq 22 exact 53.0 PCBs; Eq 19 approximation 53.6 (~1% error);
//            quiet-interval probability ~1.5%
//   H = 51:  quiet probability ~21%; approximation error > 10%
//   H = 100: cost drops below 9 PCBs
#include <iostream>

#include "analytic/bsd_model.h"
#include "analytic/sequent_model.h"
#include "bench_util.h"
#include "report/table.h"

int main() {
  using namespace tcpdemux;
  constexpr double kUsers = 2000;
  constexpr double kRate = 0.1;
  constexpr double kResponse = 0.2;

  std::cout << "=== T4 (sec 3.4): Sequent hash chains, N = 2000, R = 0.2 s "
               "===\n\n";

  report::Table table({"H", "Eq 19 approx", "Eq 22 exact", "quiet prob p",
                       "simulated", "sim hit rate"});
  for (const std::uint32_t h : {19u, 51u, 100u}) {
    bench::TpcaRun run;
    run.users = 2000;
    run.duration = 200.0;
    const auto r = bench::run_tpca(
        run, bench::config_of("sequent:" + std::to_string(h) + ":crc32"));
    table.add_row(
        {std::to_string(h),
         report::fmt(analytic::sequent_cost_approx(kUsers, h), 1),
         report::fmt(analytic::sequent_cost_exact(kUsers, h, kRate,
                                                  kResponse),
                     1),
         report::fmt(100.0 * analytic::sequent_quiet_probability(
                                 kUsers, h, kRate, kResponse),
                     1) +
             "%",
         report::fmt(r.overall.mean(), 1),
         report::fmt(100.0 * r.hit_rate(), 1) + "%"});
  }
  table.print(std::cout);

  std::cout << "\npaper: H=19 -> 53.0 exact / 53.6 approx / p~1.5%;  "
               "H=51 -> p~21%;  H=100 -> <9 PCBs\n";

  const double bsd = analytic::bsd_cost(kUsers);
  const double seq = analytic::sequent_cost_exact(kUsers, 19, kRate,
                                                  kResponse);
  std::cout << "\norder-of-magnitude claim: BSD " << report::fmt(bsd, 0)
            << " / Sequent(19) " << report::fmt(seq, 1) << " = "
            << report::fmt(bsd / seq, 1) << "x\n";
  return 0;
}
