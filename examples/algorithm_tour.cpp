// Algorithm tour: replay one identical TPC/A arrival stream through every
// PCB-lookup algorithm in the library and compare them — the paper's
// Figure 13 for your own parameters.
//
//   ./algorithm_tour [users] [response-time-s] [rtt-s]
//   e.g. ./algorithm_tour 2000 0.2 0.001
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analytic/bsd_model.h"
#include "analytic/crowcroft_model.h"
#include "analytic/sequent_model.h"
#include "analytic/srcache_model.h"
#include "core/demux_registry.h"
#include "report/ascii_plot.h"
#include "report/table.h"
#include "sim/replay.h"
#include "sim/tpca_workload.h"

int main(int argc, char** argv) {
  using namespace tcpdemux;

  std::uint32_t users = 2000;
  double response = 0.2;
  double rtt = 0.001;
  if (argc > 1) users = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) response = std::atof(argv[2]);
  if (argc > 3) rtt = std::atof(argv[3]);
  if (users == 0) {
    std::cerr << "usage: algorithm_tour [users] [response-s] [rtt-s]\n";
    return EXIT_FAILURE;
  }

  sim::TpcaWorkloadParams p;
  p.users = users;
  p.response_time = response;
  p.rtt = rtt;
  p.duration = 150.0;
  const sim::Trace trace = generate_tpca_trace(p);
  std::cout << "TPC/A: " << users << " users, R = " << response
            << " s, D = " << rtt << " s, " << trace.arrivals()
            << " packets\n\n";

  const analytic::TpcaParams mp{static_cast<double>(users), 0.1, response,
                                rtt};
  const auto model_for = [&](const std::string& spec) -> std::string {
    if (spec == "bsd") return report::fmt(analytic::bsd_cost(users), 1);
    if (spec == "mtf") {
      return report::fmt(
          analytic::CrowcroftModel{}.search_cost(mp).overall, 1);
    }
    if (spec == "srcache") {
      return report::fmt(analytic::SrCacheModel{}.search_cost(mp).overall,
                         1);
    }
    if (spec.starts_with("sequent:19")) {
      return report::fmt(
          analytic::sequent_cost_exact(users, 19, 0.1, response), 1);
    }
    if (spec.starts_with("sequent:101")) {
      return report::fmt(
          analytic::sequent_cost_exact(users, 101, 0.1, response), 1);
    }
    if (spec == "connection_id") return "1.0";
    return "-";
  };

  report::Table table({"algorithm", "model", "sim mean", "95% CI",
                       "sim p50", "sim p99", "hit rate"});
  for (const char* spec :
       {"bsd", "mtf", "srcache", "sequent:19:crc32", "sequent:101:crc32",
        "hashed_mtf:19:crc32", "dynamic", "connection_id"}) {
    auto config = core::parse_demux_spec(spec);
    if (!config) continue;
    if (config->algorithm == core::Algorithm::kConnectionId) {
      config->id_capacity = users + 1;
    }
    const auto demuxer = core::make_demuxer(*config);
    const auto r = sim::replay_trace(trace, *demuxer);
    const double ci = r.overall.mean_ci95();  // before percentile() sorts
    table.add_row({spec, model_for(spec), report::fmt(r.overall.mean(), 1),
                   "+-" + report::fmt(ci, 1),
                   std::to_string(r.overall.percentile(0.5)),
                   std::to_string(r.overall.percentile(0.99)),
                   report::fmt(100.0 * r.hit_rate(), 1) + "%"});
  }
  table.print(std::cout);

  // Distribution shapes: the whole story of the paper in two histograms.
  for (const char* spec : {"bsd", "sequent:19:crc32"}) {
    const auto demuxer = core::make_demuxer(*core::parse_demux_spec(spec));
    const auto r = sim::replay_trace(trace, *demuxer);
    const auto buckets = r.overall.log2_buckets();
    std::vector<std::string> labels;
    std::vector<double> values;
    for (std::size_t b = 1; b < buckets.size(); ++b) {
      const std::uint32_t lo = 1u << (b - 1);
      const std::uint32_t hi = (1u << b) - 1;
      labels.push_back(lo == hi ? std::to_string(lo)
                                : std::to_string(lo) + "-" +
                                      std::to_string(hi));
      values.push_back(static_cast<double>(buckets[b]));
    }
    std::cout << "\nPCBs examined per packet, " << spec << ":\n";
    report::print_bars(std::cout, labels, values);
  }

  std::cout << "\nguidance: linear lists price every packet at ~N/2 reads; "
               "move-to-front helps only bursty repeats; hashing divides "
               "cost by H and is the standard answer (every modern kernel "
               "descends from it)\n";
  return EXIT_SUCCESS;
}
