// Replay a .pcap capture through a PCB-lookup algorithm and report the
// paper's metric on real traffic — the inverse of export_pcap.
//
//   ./demux_pcap capture.pcap [demux-spec] [server-port]
//
// Connections are learned from the capture itself: the first packet of
// each flow registers a PCB (keyed toward the receiver on `server-port`,
// default: the most common destination port in the file).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <unordered_set>

#include "core/demux_registry.h"
#include "net/ethernet.h"
#include "net/packet.h"
#include "net/pcap.h"
#include "report/table.h"
#include "sim/stats.h"

int main(int argc, char** argv) {
  using namespace tcpdemux;
  if (argc < 2) {
    std::cerr << "usage: demux_pcap capture.pcap [demux-spec] "
                 "[server-port]\n";
    return EXIT_FAILURE;
  }
  const std::string path = argv[1];
  const std::string spec = argc > 2 ? argv[2] : "sequent:19:crc32";
  const auto config = core::parse_demux_spec(spec);
  if (!config) {
    std::cerr << "unknown demux spec '" << spec << "'\n";
    return EXIT_FAILURE;
  }

  // Pass 1: parse all packets; find the busiest destination port if none
  // was given (that endpoint plays "the server").
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::cerr << "cannot open " << path << '\n';
    return EXIT_FAILURE;
  }
  net::PcapReader reader(file);
  if (!reader.ok()) {
    std::cerr << path << " is not a readable pcap file\n";
    return EXIT_FAILURE;
  }
  std::vector<net::Packet> packets;
  std::map<std::uint16_t, std::size_t> port_votes;
  std::size_t unparseable = 0;
  const bool ethernet =
      reader.link_type() == net::PcapWriter::kLinkTypeEthernet;
  while (const auto record = reader.next()) {
    std::span<const std::uint8_t> datagram = record->bytes;
    if (ethernet) {
      const auto inner = net::ethernet_decapsulate_ipv4(record->bytes);
      if (!inner) {
        ++unparseable;  // ARP, IPv6, runt frames
        continue;
      }
      datagram = *inner;
    }
    if (auto packet = net::Packet::parse(datagram)) {
      ++port_votes[packet->tcp.dst_port];
      packets.push_back(std::move(*packet));
    } else {
      ++unparseable;
    }
  }
  if (packets.empty()) {
    std::cerr << "no parseable TCP/IPv4 packets in " << path << '\n';
    return EXIT_FAILURE;
  }
  std::uint16_t server_port = 0;
  if (argc > 3) {
    server_port = static_cast<std::uint16_t>(std::atoi(argv[3]));
  } else {
    std::size_t best = 0;
    for (const auto& [port, votes] : port_votes) {
      if (votes > best) {
        best = votes;
        server_port = port;
      }
    }
  }

  // Pass 2: replay the server-bound packets.
  const auto demuxer = core::make_demuxer(*config);
  std::unordered_set<net::FlowKey> known;
  sim::SampleStats stats;
  std::uint64_t hits = 0;
  std::uint64_t skipped = 0;
  for (const net::Packet& packet : packets) {
    if (packet.tcp.dst_port != server_port) {
      ++skipped;
      continue;
    }
    const net::FlowKey key = packet.receiver_flow_key();
    if (known.insert(key).second) {
      demuxer->insert(key);  // first sight of this flow: connection setup
    }
    const bool pure_ack = packet.payload.empty() &&
                          packet.tcp.has(net::TcpFlag::kAck) &&
                          !packet.tcp.has(net::TcpFlag::kSyn) &&
                          !packet.tcp.has(net::TcpFlag::kFin);
    const auto r = demuxer->lookup(key, pure_ack ? core::SegmentKind::kAck
                                                 : core::SegmentKind::kData);
    stats.add(r.examined);
    if (r.cache_hit) ++hits;
  }

  report::Table table({"metric", "value"});
  table.add_row({"capture", path});
  table.add_row({"algorithm", demuxer->name()});
  table.add_row({"server port", std::to_string(server_port)});
  table.add_row({"packets replayed", std::to_string(stats.count())});
  table.add_row({"other-direction/skipped", std::to_string(skipped)});
  table.add_row({"unparseable records", std::to_string(unparseable)});
  table.add_row({"connections", std::to_string(demuxer->size())});
  table.add_row({"mean PCBs examined", report::fmt(stats.mean(), 2)});
  table.add_row({"p50 / p99 / max",
                 std::to_string(stats.percentile(0.5)) + " / " +
                     std::to_string(stats.percentile(0.99)) + " / " +
                     std::to_string(stats.max())});
  table.add_row({"cache hit rate",
                 report::fmt(stats.count() == 0
                                 ? 0.0
                                 : 100.0 * static_cast<double>(hits) /
                                       static_cast<double>(stats.count()),
                             1) +
                     "%"});
  table.print(std::cout);
  return EXIT_SUCCESS;
}
