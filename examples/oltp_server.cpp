// OLTP server: the paper's motivating scenario, end to end.
//
// A database server (SocketTable + demuxer + TCP machine) faces a
// population of heads-down data-entry clients. Every client performs real
// TCP handshakes, then loops { think; send query; server processes and
// responds; client acks } through the discrete-event simulator, with
// every packet serialized to wire format and checksum-verified on
// delivery. At the end the server reports the paper's metric for the
// algorithm chosen on the command line.
//
//   ./oltp_server [demux-spec] [clients] [seconds]
//   e.g. ./oltp_server bsd 400 120
//        ./oltp_server sequent:101:crc32 400 120
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/demux_registry.h"
#include "net/packet.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "tcp/socket_table.h"

namespace {

using namespace tcpdemux;

constexpr net::Ipv4Addr kServerAddr{10, 0, 0, 1};
constexpr std::uint16_t kServerPort = 1521;
constexpr double kHalfRtt = 0.0005;
constexpr double kServerProcessing = 0.2;  // database work per query
constexpr double kThinkMean = 10.0;

/// One simulated data-entry client: a real TCP endpoint that thinks,
/// queries, and acknowledges responses through its own SocketTable.
class Client {
 public:
  Client(sim::EventQueue& queue, tcp::SocketTable& server, std::uint16_t port,
         sim::Rng& rng)
      : queue_(queue),
        server_(server),
        rng_(rng),
        host_(core::DemuxConfig{core::Algorithm::kBsd},
              [this](std::vector<std::uint8_t> wire, const core::Pcb&) {
                // Client -> server link.
                queue_.schedule_in(kHalfRtt, [this, wire = std::move(wire)] {
                  server_.deliver_wire(wire);
                });
              }),
        key_{net::Ipv4Addr(10, 1, static_cast<std::uint8_t>(port >> 8),
                           static_cast<std::uint8_t>(port & 0xff)),
             port, kServerAddr, kServerPort} {}

  void start() {
    pcb_ = host_.connect(key_);
    queue_.schedule_in(rng_.exponential(kThinkMean), [this] { query(); });
  }

  /// Server -> client delivery.
  void deliver(const std::vector<std::uint8_t>& wire) {
    const auto r = host_.deliver_wire(wire);
    if (r.pcb != nullptr && r.pcb->bytes_in > bytes_seen_) {
      // A response arrived; think, then enter the next transaction.
      bytes_seen_ = r.pcb->bytes_in;
      ++transactions_;
      queue_.schedule_in(rng_.truncated_exponential(kThinkMean,
                                                    10.0 * kThinkMean),
                         [this] { query(); });
    }
  }

  [[nodiscard]] std::uint64_t transactions() const { return transactions_; }
  [[nodiscard]] const net::FlowKey& key() const { return key_; }
  [[nodiscard]] tcp::SocketTable& host() { return host_; }

 private:
  void query() {
    if (pcb_ != nullptr && pcb_->state == core::TcpState::kEstablished) {
      host_.send_data(*pcb_, 120);  // a TPC/A-sized query
    } else {
      // Handshake still in flight; try again shortly.
      queue_.schedule_in(0.25, [this] { query(); });
    }
  }

  sim::EventQueue& queue_;
  tcp::SocketTable& server_;
  sim::Rng& rng_;
  tcp::SocketTable host_;
  net::FlowKey key_;
  core::Pcb* pcb_ = nullptr;
  std::uint64_t bytes_seen_ = 0;
  std::uint64_t transactions_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string spec = argc > 1 ? argv[1] : "sequent:19:crc32";
  std::uint32_t clients = 300;
  double horizon = 90.0;
  if (argc > 2) clients = static_cast<std::uint32_t>(std::atoi(argv[2]));
  if (argc > 3) horizon = std::atof(argv[3]);

  const auto config = tcpdemux::core::parse_demux_spec(spec);
  if (!config) {
    std::cerr << "unknown demux spec '" << spec << "'\n";
    return EXIT_FAILURE;
  }

  using namespace tcpdemux;
  sim::EventQueue queue;
  sim::Rng rng(2026);

  std::vector<std::unique_ptr<Client>> population;
  tcp::SocketTable* server_ptr = nullptr;

  // The server delivers responses back through the same simulated link.
  tcp::SocketTable server(*config, [&](std::vector<std::uint8_t> wire,
                                       const core::Pcb& pcb) {
    const auto port = pcb.key.foreign_port;
    queue.schedule_in(kHalfRtt, [&, wire = std::move(wire), port] {
      for (const auto& c : population) {
        if (c->key().local_port == port) {
          c->deliver(wire);
          return;
        }
      }
    });
  });
  server_ptr = &server;
  server.listen(kServerAddr, kServerPort);

  for (std::uint32_t i = 0; i < clients; ++i) {
    population.push_back(std::make_unique<Client>(
        queue, server, static_cast<std::uint16_t>(40000 + i), rng));
  }
  for (const auto& c : population) c->start();

  // Server-side query handling: poll established PCBs for new bytes and
  // respond after the database "processing time". (A PSH-notification
  // callback would be the fancier design; polling keeps the example
  // focused on demultiplexing.)
  std::uint64_t responses = 0;
  std::vector<std::uint64_t> seen(clients, 0);
  std::function<void()> poll = [&] {
    server_ptr->demuxer().for_each_pcb([&](const core::Pcb& p) {
      const std::size_t idx = p.key.foreign_port - 40000u;
      if (idx < seen.size() && p.bytes_in > seen[idx] &&
          p.state == core::TcpState::kEstablished) {
        seen[idx] = p.bytes_in;
        core::Pcb* pcb = server_ptr->find(p.key);
        queue.schedule_in(kServerProcessing, [&, pcb] {
          if (pcb != nullptr &&
              pcb->state == core::TcpState::kEstablished) {
            server_ptr->send_data(*pcb, 320);  // the response
            ++responses;
          }
        });
      }
    });
    if (queue.now() < horizon) queue.schedule_in(0.01, poll);
  };
  queue.schedule_in(0.01, poll);
  queue.run_until(horizon);

  std::uint64_t transactions = 0;
  for (const auto& c : population) transactions += c->transactions();

  const auto& stats = server.demuxer().stats();
  std::cout << "OLTP server simulation\n"
            << "  algorithm:            " << server.demuxer().name() << '\n'
            << "  clients:              " << clients << '\n'
            << "  simulated time:       " << horizon << " s\n"
            << "  connections:          " << server.connection_count() << '\n'
            << "  transactions done:    " << transactions << '\n'
            << "  responses sent:       " << responses << '\n'
            << "  server packet lookups:" << stats.lookups << '\n'
            << "  mean PCBs examined:   " << stats.mean_examined() << '\n'
            << "  cache hit rate:       " << 100.0 * stats.hit_rate()
            << "%\n"
            << "\ntry:  ./oltp_server bsd " << clients << "  vs  "
            << "./oltp_server sequent:101:crc32 " << clients << '\n';
  return EXIT_SUCCESS;
}
