// Bulk transfer: the packet-train traffic the BSD one-entry cache was
// built for (paper §1), versus the OLTP traffic that defeats it.
//
// Replays two generated workloads — a handful of bulk connections sending
// back-to-back segment trains, and a 1,000-user TPC/A population — through
// both the BSD algorithm and the Sequent algorithm, printing the hit rates
// and examined-PCB costs side by side. This is the paper's introduction in
// one screen of output.
#include <iostream>

#include "core/demux_registry.h"
#include "report/table.h"
#include "sim/bulk_workload.h"
#include "sim/replay.h"
#include "sim/tpca_workload.h"

int main() {
  using namespace tcpdemux;

  // Workload A: four bulk connections, 16-segment trains.
  sim::BulkWorkloadParams bulk_params;
  bulk_params.connections = 4;
  bulk_params.train_length = 16;
  bulk_params.train_gap_mean = 0.02;
  bulk_params.duration = 5.0;
  const sim::Trace bulk = generate_bulk_trace(bulk_params);

  // Workload B: 1,000 TPC/A users entering transactions.
  sim::TpcaWorkloadParams oltp_params;
  oltp_params.users = 1000;
  oltp_params.duration = 120.0;
  const sim::Trace oltp = generate_tpca_trace(oltp_params);

  report::Table table({"workload", "algorithm", "mean PCBs examined",
                       "cache hit rate", "p99 examined"});
  for (const auto& [name, trace] :
       {std::pair<const char*, const sim::Trace*>{"bulk trains", &bulk},
        {"TPC/A 1000u", &oltp}}) {
    for (const char* spec : {"bsd", "sequent:19:crc32"}) {
      const auto demuxer = core::make_demuxer(*core::parse_demux_spec(spec));
      const auto r = sim::replay_trace(*trace, *demuxer);
      table.add_row({name, spec, report::fmt(r.overall.mean(), 2),
                     report::fmt(100.0 * r.hit_rate(), 1) + "%",
                     std::to_string(r.overall.percentile(0.99))});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nreading the table:\n"
      << "  * on packet trains the BSD cache hits nearly always -- the\n"
      << "    4.3-Reno optimization was the right call for bulk data;\n"
      << "  * on OLTP traffic its hit rate collapses to ~1/N and every\n"
      << "    packet scans half the PCB list;\n"
      << "  * the hashed demultiplexer is within a whisker of the cache\n"
      << "    on trains AND an order of magnitude cheaper on OLTP.\n";
  return 0;
}
