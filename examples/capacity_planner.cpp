// Capacity planner: the paper's models answering a deployer's questions.
//
//   ./capacity_planner [users] [target-pcbs] [response-time-s]
//
// Given an expected population and a lookup budget, prints the chain count
// Equation 22 requires, the memory it costs, the population headroom the
// configuration carries, and where the legacy algorithms would land.
#include <cstdlib>
#include <iostream>

#include "analytic/bsd_model.h"
#include "analytic/crowcroft_model.h"
#include "analytic/sequent_model.h"
#include "analytic/solvers.h"
#include "analytic/srcache_model.h"
#include "core/pcb.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace tcpdemux;

  double users = 2000;
  double target = 10.0;
  double response = 0.2;
  if (argc > 1) users = std::atof(argv[1]);
  if (argc > 2) target = std::atof(argv[2]);
  if (argc > 3) response = std::atof(argv[3]);
  if (users < 1 || target < 1) {
    std::cerr << "usage: capacity_planner [users>=1] [target-pcbs>=1] "
                 "[response-s]\n";
    return EXIT_FAILURE;
  }
  constexpr double kRate = 0.1;

  std::cout << "capacity plan: " << users << " TPC/A users, budget "
            << target << " PCBs examined per packet, R = " << response
            << " s\n\n";

  // Where the contenders land without hashing.
  const analytic::TpcaParams mp{users, kRate, response, 0.001};
  report::Table ref({"algorithm", "expected PCBs/packet"});
  ref.add_row({"BSD list + 1-entry cache",
               report::fmt(analytic::bsd_cost(users), 1)});
  ref.add_row({"Crowcroft move-to-front",
               report::fmt(
                   analytic::CrowcroftModel{}.search_cost(mp).overall, 1)});
  ref.add_row({"Partridge/Pink send-receive cache",
               report::fmt(
                   analytic::SrCacheModel{}.search_cost(mp).overall, 1)});
  ref.add_row({"Sequent, installation default H=19",
               report::fmt(analytic::sequent_cost_exact(users, 19, kRate,
                                                        response),
                           1)});
  ref.print(std::cout);

  const auto chains =
      analytic::sequent_chains_for_target(users, kRate, response, target);
  if (!chains) {
    std::cout << "\nno chain count meets a budget of " << target
              << " (the floor is 1 PCB per lookup)\n";
    return EXIT_FAILURE;
  }

  const double achieved =
      analytic::sequent_cost_exact(users, *chains, kRate, response);
  const double headroom = analytic::sequent_users_for_target(
      *chains, kRate, response, target);
  // Chain headers: head/tail/size/cache pointers, ~40-64 bytes each.
  const double header_kib = *chains * 64.0 / 1024.0;
  const double pcb_kib = users * sizeof(core::Pcb) / 1024.0;

  std::cout << "\nrecommendation\n"
            << "  hash chains (H):        " << *chains << '\n'
            << "  expected PCBs/packet:   " << report::fmt(achieved, 2)
            << '\n'
            << "  users carried at budget:" << report::fmt(headroom, 0)
            << " (headroom "
            << report::fmt(100.0 * (headroom - users) / users, 0) << "%)\n"
            << "  chain header memory:    " << report::fmt(header_kib, 1)
            << " KiB (PCBs themselves: " << report::fmt(pcb_kib, 0)
            << " KiB)\n"
            << "\nsection 3.5's point, quantified: the headers are noise "
               "next to the PCBs, so buy as many chains as the target "
               "needs.\n";
  return EXIT_SUCCESS;
}
