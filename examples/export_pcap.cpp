// Export a generated workload as a standard .pcap capture file.
//
// The synthesized packets carry consistent sequence numbers and valid
// checksums, so the output opens cleanly in tcpdump/wireshark:
//
//   ./export_pcap tpca  out.pcap 100 60     # 100 users, 60 s
//   ./export_pcap bulk  out.pcap 4   5
//   ./export_pcap poll  out.pcap 200 30
//   tcpdump -nn -r out.pcap | head
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "net/pcap.h"
#include "sim/address_space.h"
#include "sim/bulk_workload.h"
#include "sim/polling_workload.h"
#include "sim/tpca_workload.h"
#include "sim/trace_packets.h"

int main(int argc, char** argv) {
  using namespace tcpdemux;

  const std::string kind = argc > 1 ? argv[1] : "tpca";
  const std::string path = argc > 2 ? argv[2] : "workload.pcap";
  const std::uint32_t population =
      argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 50;
  const double seconds = argc > 4 ? std::atof(argv[4]) : 30.0;

  sim::Trace trace;
  if (kind == "tpca") {
    sim::TpcaWorkloadParams p;
    p.users = population;
    p.duration = seconds;
    p.warmup = 5.0;
    p.open_loop = false;
    trace = generate_tpca_trace(p);
  } else if (kind == "bulk") {
    sim::BulkWorkloadParams p;
    p.connections = population;
    p.duration = seconds;
    trace = generate_bulk_trace(p);
  } else if (kind == "poll") {
    sim::PollingWorkloadParams p;
    p.terminals = population;
    p.duration = seconds;
    trace = generate_polling_trace(p);
  } else {
    std::cerr << "usage: export_pcap tpca|bulk|poll [file] [population] "
                 "[seconds]\n";
    return EXIT_FAILURE;
  }

  sim::AddressSpaceParams ap;
  ap.clients = trace.connections;
  const auto keys = sim::make_client_keys(ap);
  const auto packets = sim::synthesize_packets(trace, keys);

  std::ofstream file(path, std::ios::binary);
  if (!file) {
    std::cerr << "cannot open " << path << " for writing\n";
    return EXIT_FAILURE;
  }
  net::PcapWriter writer(file);
  std::uint64_t bytes = 0;
  for (const sim::TimedPacket& tp : packets) {
    if (!writer.write(tp.time, tp.wire)) {
      std::cerr << "write failed\n";
      return EXIT_FAILURE;
    }
    bytes += tp.wire.size();
  }

  std::cout << "wrote " << writer.packets_written() << " packets (" << bytes
            << " bytes of " << kind << " traffic, " << trace.connections
            << " connections, " << seconds << " s) to " << path << '\n'
            << "inspect with: tcpdump -nn -r " << path << " | head\n";
  return EXIT_SUCCESS;
}
