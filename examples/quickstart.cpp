// Quickstart: the five-minute tour of the library's public API.
//
// 1. Build a demultiplexer (the Sequent hashed-chain algorithm).
// 2. Register connections (PCBs).
// 3. Parse a real TCP/IPv4 wire packet and demultiplex it.
// 4. Read the cost accounting — the paper's "PCBs examined" metric.
#include <cstdlib>
#include <iostream>

#include "core/demux_registry.h"
#include "net/packet.h"

int main() {
  using namespace tcpdemux;

  // 1. A demuxer: 19 hash chains (the Sequent installation default),
  //    CRC-32 flow hashing, per-chain last-found cache.
  const auto demuxer = core::make_demuxer(
      *core::parse_demux_spec("sequent:19:crc32"));

  // 2. Register a few connections as the server at 10.0.0.1:1521 sees
  //    them: local half = us, foreign half = the client.
  const net::Ipv4Addr server(10, 0, 0, 1);
  for (std::uint16_t client_port = 40001; client_port <= 40016;
       ++client_port) {
    const net::FlowKey key{server, 1521, net::Ipv4Addr(10, 1, 0, 2),
                           client_port};
    if (demuxer->insert(key) == nullptr) {
      std::cerr << "duplicate key " << key.to_string() << '\n';
      return EXIT_FAILURE;
    }
  }
  std::cout << "registered " << demuxer->size() << " connections in "
            << demuxer->name() << "\n\n";

  // 3. A packet arrives from 10.1.0.2:40007. Build real wire bytes (as a
  //    NIC would deliver) and parse them back — checksums and all.
  const auto wire = net::PacketBuilder()
                        .from({net::Ipv4Addr(10, 1, 0, 2), 40007})
                        .to({server, 1521})
                        .seq(1000)
                        .ack_seq(2000)
                        .payload_size(64)
                        .build();
  const auto packet = net::Packet::parse(wire);
  if (!packet) {
    std::cerr << "packet failed to parse\n";
    return EXIT_FAILURE;
  }

  // 4. Demultiplex. The result carries the PCB and the paper's figure of
  //    merit: how many PCBs were examined to find it.
  const auto result = demuxer->lookup(packet->receiver_flow_key(),
                                      core::SegmentKind::kData);
  if (result.pcb == nullptr) {
    std::cerr << "no PCB matched\n";
    return EXIT_FAILURE;
  }
  std::cout << "packet " << packet->receiver_flow_key().to_string()
            << "\n  -> PCB conn_id=" << result.pcb->conn_id << ", examined "
            << result.examined << " PCB(s), cache_hit="
            << (result.cache_hit ? "yes" : "no") << '\n';

  // A repeat lookup on the same connection hits the chain cache: cost 1.
  const auto again = demuxer->lookup(packet->receiver_flow_key(),
                                     core::SegmentKind::kData);
  std::cout << "same connection again: examined " << again.examined
            << " PCB(s), cache_hit=" << (again.cache_hit ? "yes" : "no")
            << "\n\ncumulative: " << demuxer->stats().lookups
            << " lookups, mean " << demuxer->stats().mean_examined()
            << " PCBs examined, hit rate " << demuxer->stats().hit_rate()
            << '\n';
  return EXIT_SUCCESS;
}
