// Telemetry dump: replay a TPC/A trace through one demuxer with interval
// telemetry on, then export the time series and end-of-run distributions
// as schema-v1 JSON (and the series as CSV on stdout).
//
// This is the observability quickstart DESIGN.md's "Observability" section
// walks through, and the binary ci/check.sh stage 7 smoke-tests: the JSON
// it writes must validate against tools/telemetry/validate_schema.py.
//
//   ./telemetry_dump [spec] [users] [interval] [out.json]
//   e.g. ./telemetry_dump sequent:19:crc32 500 2000 telemetry.json
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/demux_registry.h"
#include "report/telemetry_json.h"
#include "sim/replay.h"
#include "sim/tpca_workload.h"

int main(int argc, char** argv) {
  using namespace tcpdemux;

  std::string spec = "sequent:19:crc32";
  std::uint32_t users = 500;
  std::uint64_t interval = 2000;
  std::string out_path = "telemetry.json";
  if (argc > 1) spec = argv[1];
  if (argc > 2) users = static_cast<std::uint32_t>(std::atoi(argv[2]));
  if (argc > 3) interval = static_cast<std::uint64_t>(std::atoll(argv[3]));
  if (argc > 4) out_path = argv[4];
  if (users == 0 || interval == 0) {
    std::cerr << "usage: telemetry_dump [spec] [users] [interval] "
                 "[out.json]\n";
    return EXIT_FAILURE;
  }

  const auto config = core::parse_demux_spec(spec);
  if (!config) {
    std::cerr << "bad demux spec: " << spec << '\n';
    return EXIT_FAILURE;
  }
  const auto demuxer = core::make_demuxer(*config);

  sim::TpcaWorkloadParams p;
  p.users = users;
  p.duration = 60.0;
  const sim::Trace trace = generate_tpca_trace(p);

  sim::ReplayOptions options;
  options.telemetry_interval = interval;
  options.latency_sample_every = 64;
  const sim::ReplayResult result = sim::replay_trace(trace, *demuxer, options);

  report::TelemetryReport rec;
  rec.source = "sim/replay";
  rec.algorithm = demuxer->name();
  rec.telemetry = demuxer->telemetry();
  rec.occupancy = demuxer->occupancy();
  rec.series = result.series;
  rec.latency_ns = result.latency_ns;

  const std::vector<report::TelemetryReport> reports = {rec};
  if (!report::write_telemetry_json(out_path, reports)) {
    std::cerr << "failed to write " << out_path << '\n';
    return EXIT_FAILURE;
  }

  std::cout << "algorithm:    " << rec.algorithm << '\n'
            << "lookups:      " << rec.telemetry.counters().lookups << '\n'
            << "mean examined " << rec.telemetry.examined().mean() << '\n'
            << "p99 examined  " << rec.telemetry.examined().percentile_upper(0.99)
            << '\n'
            << "samples:      " << rec.series.samples.size() << '\n'
            << "wrote:        " << out_path << "\n\n";
  report::write_series_csv(std::cout, rec.algorithm, rec.series);
  return 0;
}
