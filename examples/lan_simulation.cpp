// A switched LAN, end to end: the paper's "thousands of concurrent users
// connected by local-area networks" setting, at frame granularity.
//
//   ./lan_simulation [clients] [seconds] [demux-spec]
//
// One server and N client hosts hang off a learning Ethernet bridge.
// Everything is real: clients ARP for the server before their first SYN,
// handshakes cross the bridge as checksummed frames, each client then
// loops TPC/A-style transactions. The report shows what the bridge
// learned, what the server's demultiplexer paid, and where the time went.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "report/table.h"
#include "sim/ethernet_switch.h"
#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/rng.h"
#include "tcp/lan_host.h"

int main(int argc, char** argv) {
  using namespace tcpdemux;
  std::size_t clients = 40;
  double horizon = 120.0;
  std::string spec = "sequent:19:crc32";
  if (argc > 1) clients = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) horizon = std::atof(argv[2]);
  if (argc > 3) spec = argv[3];
  const auto config = core::parse_demux_spec(spec);
  if (!config || clients == 0 || clients > 250) {
    std::cerr << "usage: lan_simulation [clients 1-250] [seconds] "
                 "[demux-spec]\n";
    return EXIT_FAILURE;
  }

  sim::EventQueue queue;
  sim::EthernetSwitch bridge;
  sim::Rng rng(7);
  std::vector<std::unique_ptr<tcp::LanHost>> hosts;
  std::vector<std::unique_ptr<sim::Link>> uplinks;
  std::vector<std::unique_ptr<sim::Link>> downlinks;

  const auto clock = [&queue] { return queue.now(); };
  for (std::size_t i = 0; i <= clients; ++i) {
    hosts.push_back(std::make_unique<tcp::LanHost>(
        net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(i >> 8),
                      static_cast<std::uint8_t>(1 + (i & 0xff))),
        i == 0 ? *config : core::DemuxConfig{core::Algorithm::kBsd},
        clock));
  }
  sim::Link::Options wire;
  wire.delay = 0.0001;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    downlinks.push_back(std::make_unique<sim::Link>(
        queue, wire, [&hosts, i](std::vector<std::uint8_t> f) {
          hosts[i]->receive_frame(std::move(f));
        }));
    const std::size_t port =
        bridge.add_port([&downlinks, i](std::vector<std::uint8_t> f) {
          downlinks[i]->send(std::move(f));
        });
    uplinks.push_back(std::make_unique<sim::Link>(
        queue, wire, [&bridge, &queue, port](std::vector<std::uint8_t> f) {
          bridge.receive(port, f, queue.now());
        }));
    hosts[i]->set_transmit([&uplinks, i](std::vector<std::uint8_t> f) {
      uplinks[i]->send(std::move(f));
    });
  }

  tcp::LanHost& server = *hosts[0];
  server.table().listen(server.ip(), 1521);

  // Each client connects, then loops { think; query; await response }.
  std::vector<core::Pcb*> pcbs(clients + 1, nullptr);
  std::vector<std::uint64_t> answered(clients + 1, 0);
  std::function<void(std::size_t)> think_then_query =
      [&](std::size_t i) {
        if (queue.now() >= horizon) return;
        core::Pcb* pcb = pcbs[i];
        if (pcb != nullptr && pcb->state == core::TcpState::kEstablished) {
          hosts[i]->table().send_data(*pcb, 120);
        }
        queue.schedule_in(rng.truncated_exponential(10.0, 100.0),
                          [&, i] { think_then_query(i); });
      };
  for (std::size_t i = 1; i <= clients; ++i) {
    queue.schedule_in(rng.uniform(0.0, 2.0), [&, i] {
      pcbs[i] = hosts[i]->table().connect(
          {hosts[i]->ip(), 40001, server.ip(), 1521});
      queue.schedule_in(rng.exponential(10.0), [&, i] {
        think_then_query(i);
      });
    });
  }
  // The server answers every query it has seen on each poll tick.
  std::vector<std::uint64_t> seen(clients + 1, 0);
  std::function<void()> serve = [&] {
    for (std::size_t i = 1; i <= clients; ++i) {
      core::Pcb* pcb = server.table().find(
          {server.ip(), 1521, hosts[i]->ip(), 40001});
      if (pcb != nullptr && pcb->state == core::TcpState::kEstablished &&
          pcb->bytes_in > seen[i]) {
        seen[i] = pcb->bytes_in;
        server.table().send_data(*pcb, 320);
        ++answered[i];
      }
    }
    if (queue.now() < horizon) queue.schedule_in(0.05, serve);
  };
  queue.schedule_in(0.05, serve);
  queue.run_until(horizon);

  std::uint64_t transactions = 0;
  for (std::size_t i = 1; i <= clients; ++i) transactions += answered[i];
  const auto& stats = server.table().demuxer().stats();

  report::Table table({"metric", "value"});
  table.add_row({"clients", std::to_string(clients)});
  table.add_row({"server demuxer", server.table().demuxer().name()});
  table.add_row({"simulated time", report::fmt(horizon, 0) + " s"});
  table.add_row({"connections established",
                 std::to_string(server.table().connection_count())});
  table.add_row({"transactions answered", std::to_string(transactions)});
  table.add_row({"server lookups", std::to_string(stats.lookups)});
  table.add_row({"mean PCBs examined", report::fmt(stats.mean_examined(), 2)});
  table.add_row({"cache hit rate",
                 report::fmt(100.0 * stats.hit_rate(), 1) + "%"});
  table.add_row({"bridge MACs learned",
                 std::to_string(bridge.mac_table_size())});
  table.add_row({"bridge forwarded/flooded",
                 std::to_string(bridge.stats().forwarded) + " / " +
                     std::to_string(bridge.stats().flooded)});
  table.print(std::cout);

  std::cout << "\nevery packet above crossed the bridge as a checksummed "
               "Ethernet frame; try '... " << clients << " " << horizon
            << " bsd' to feel the list\n";
  return EXIT_SUCCESS;
}
